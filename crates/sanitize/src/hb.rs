//! Happens-before relation over a task DAG.
//!
//! Dependence edges always point forward in submission order (the
//! tracker derives them that way and `TaskGraph::add_dep` enforces it),
//! so the transitive closure can be computed in one forward sweep:
//! task `t`'s *ancestor set* is the union of each predecessor's ancestor
//! set plus the predecessor itself. Ancestor sets are dense bitsets —
//! the DAG analogue of a vector clock, collapsed to one bit per task
//! since task ids totally order submission.
//!
//! The parallel measured runtime additionally executes window by window
//! with a barrier between windows, so tasks in different windows are
//! ordered even without a dependence path; [`HappensBefore::from_graph`]
//! bakes that in, while [`HappensBefore::from_edges`] (used by the
//! dependence-tracker cross-check) is edges-only.

use tahoe_taskrt::{TaskGraph, TaskId};

/// Precomputed happens-before relation for `n` tasks.
#[derive(Debug, Clone)]
pub struct HappensBefore {
    words: usize,
    /// `n * words` bitset: row `t` holds every task that happens-before
    /// `t` through dependence edges (transitively), excluding `t`.
    anc: Vec<u64>,
    /// Window of each task; differing windows order tasks via the
    /// inter-window barrier. Empty when built edges-only.
    window: Vec<u32>,
}

impl HappensBefore {
    /// Build from a task graph, including window-barrier ordering.
    pub fn from_graph(g: &TaskGraph) -> Self {
        let n = g.len();
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for t in g.tasks() {
            preds[t.id.index()] = g.preds(t.id).iter().map(|p| p.0).collect();
        }
        let window = g.tasks().iter().map(|t| t.window).collect();
        Self::build(n, &preds, window)
    }

    /// Build from raw forward edges `(from, to)` with `from < to`, no
    /// window barriers. Panics on a backward or self edge — such a graph
    /// is cyclic and has no happens-before relation (run
    /// [`crate::find_cycle`] first).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(
                a < b && (b as usize) < n,
                "happens-before requires forward edges within bounds"
            );
            preds[b as usize].push(a);
        }
        Self::build(n, &preds, vec![0; n])
    }

    fn build(n: usize, preds: &[Vec<u32>], window: Vec<u32>) -> Self {
        let words = n.div_ceil(64);
        let mut anc = vec![0u64; n * words];
        for (t, preds_t) in preds.iter().enumerate() {
            // Predecessors have smaller ids, so their rows are final and
            // live entirely before row `t` in the flat vec.
            let (done, rest) = anc.split_at_mut(t * words);
            let row_t = &mut rest[..words];
            for &p in preds_t {
                let p = p as usize;
                let row_p = &done[p * words..(p + 1) * words];
                for (w, bits) in row_t.iter_mut().enumerate() {
                    *bits |= row_p[w];
                }
                row_t[p / 64] |= 1u64 << (p % 64);
            }
        }
        HappensBefore { words, anc, window }
    }

    /// Number of tasks the relation covers.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Whether `a` happens-before `b` (strict: `a != b`).
    pub fn happens_before(&self, a: TaskId, b: TaskId) -> bool {
        if a == b {
            return false;
        }
        let (ai, bi) = (a.index(), b.index());
        if self.window[ai] != self.window[bi] {
            // The inter-window barrier orders them.
            return self.window[ai] < self.window[bi];
        }
        self.anc[bi * self.words + ai / 64] & (1u64 << (ai % 64)) != 0
    }

    /// Whether the pair is ordered either way.
    pub fn ordered(&self, a: TaskId, b: TaskId) -> bool {
        self.happens_before(a, b) || self.happens_before(b, a)
    }

    /// Window of task `t` (0 for relations built edges-only). The plan
    /// auditor uses this to order plan steps — issued at a window
    /// boundary — against accesses of earlier windows.
    pub fn window(&self, t: TaskId) -> u32 {
        self.window[t.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    #[test]
    fn transitive_closure_over_a_chain() {
        let hb = HappensBefore::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(hb.happens_before(t(0), t(2)), "closure must be transitive");
        assert!(hb.ordered(t(0), t(1)));
        assert!(!hb.happens_before(t(2), t(0)));
        assert!(!hb.happens_before(t(1), t(1)), "strict relation");
    }

    #[test]
    fn diamond_leaves_siblings_unordered() {
        let hb = HappensBefore::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert!(!hb.ordered(t(1), t(2)));
        assert!(hb.happens_before(t(0), t(3)));
    }

    #[test]
    fn windows_act_as_barriers_in_graph_form() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        use tahoe_hms::{AccessProfile, ObjectId};
        use tahoe_taskrt::{AccessMode, TaskAccess};
        let acc = |o: u32| {
            TaskAccess::new(
                ObjectId(o),
                AccessMode::Write,
                AccessProfile::streaming(8, 8),
            )
        };
        let t0 = g.add_task(c, vec![acc(0)], 1.0);
        g.mark_window();
        let t1 = g.add_task(c, vec![acc(1)], 1.0);
        // Disjoint objects: no dependence edge, but the window barrier
        // still orders them.
        assert!(g.preds(t1).is_empty());
        let hb = HappensBefore::from_graph(&g);
        assert!(hb.happens_before(t0, t1));
        assert!(!hb.happens_before(t1, t0));
    }

    #[test]
    fn wide_graphs_cross_word_boundaries() {
        // 0 -> 70 -> 130: ancestor bits live in different u64 words.
        let hb = HappensBefore::from_edges(131, &[(0, 70), (70, 130)]);
        assert!(hb.happens_before(t(0), t(130)));
        assert!(!hb.ordered(t(1), t(130)));
        assert_eq!(hb.len(), 131);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn backward_edge_panics() {
        let _ = HappensBefore::from_edges(2, &[(1, 1)]);
    }
}
