//! Calibration kernels: STREAM triad and pointer chase.
//!
//! The paper measures its model-correction constants against two
//! microbenchmarks with known behaviour: STREAM (pure bandwidth, maximal
//! memory concurrency) and pChase (pure latency, a single dependent
//! chain). Two forms live here:
//!
//! * ground-truth *access profiles* ([`stream_triad`], [`pchase`]) fed
//!   through the same sampling and timing paths as application tasks in
//!   the virtual-time simulator; and
//! * *executable* kernels ([`run_stream_triad`], [`run_pchase`]) that
//!   put real load/store traffic on caller-provided buffers for
//!   wall-clock calibration in measured mode. Every loop is protected
//!   with [`std::hint::black_box`] so the optimizer can neither elide
//!   the traffic nor break the pChase dependence chain — without that,
//!   "measured" numbers calibrate the compiler, not the memory.

use std::hint::black_box;

use tahoe_hms::AccessProfile;

/// Memory-level parallelism of a hardware-prefetched streaming loop.
pub const STREAM_MLP: f64 = 16.0;

/// STREAM triad over `n` elements-per-array of 64-byte lines:
/// `a[i] = b[i] + s * c[i]` reads two arrays and writes one.
pub fn stream_triad(lines_per_array: u64) -> AccessProfile {
    AccessProfile::new(2 * lines_per_array, lines_per_array, STREAM_MLP)
}

/// Pointer chase over `n` nodes: `n` fully dependent loads, no stores,
/// no memory-level parallelism.
pub fn pchase(nodes: u64) -> AccessProfile {
    AccessProfile::pointer_chase(nodes)
}

/// Execute one STREAM-triad pass `a[i] = b[i] + s * c[i]` over three
/// equal-length `f64` slices. Returns a checksum of `a` so the stores
/// are observably live. All three streams go through `black_box`.
pub fn run_stream_triad(a: &mut [f64], b: &[f64], c: &[f64], scalar: f64) -> f64 {
    let n = a.len().min(b.len()).min(c.len());
    for i in 0..n {
        // black_box on the *inputs* stops the compiler from hoisting or
        // vector-folding the whole pass into a closed form.
        a[i] = black_box(b[i]) + scalar * black_box(c[i]);
    }
    let mut sum = 0.0;
    for &x in &a[..n] {
        sum += x;
    }
    black_box(sum)
}

/// Build a random-cycle permutation over `nodes` indices (Sattolo's
/// algorithm with a splitmix64 generator): following `next[i]` from any
/// start visits every node exactly once before returning, which defeats
/// both hardware prefetching and cache reuse.
pub fn chase_cycle(nodes: usize, seed: u64) -> Vec<u64> {
    let mut next: Vec<u64> = (0..nodes as u64).collect();
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut rand = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..nodes).rev() {
        let j = (rand() % i as u64) as usize;
        next.swap(i, j);
    }
    next
}

/// Execute `steps` fully dependent loads over a chase cycle built by
/// [`chase_cycle`]. The loaded value *is* the next index, so the loads
/// serialize; `black_box` pins the chain in place.
pub fn run_pchase(next: &[u64], steps: u64) -> u64 {
    if next.is_empty() {
        return 0;
    }
    let mut idx = 0u64;
    for _ in 0..steps {
        idx = black_box(next[idx as usize]);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::presets;

    #[test]
    fn stream_shape() {
        let p = stream_triad(1000);
        assert_eq!(p.loads, 2000);
        assert_eq!(p.stores, 1000);
        assert!(p.mlp >= 8.0);
    }

    #[test]
    fn stream_saturates_bandwidth_on_dram() {
        let dram = presets::dram(1 << 30);
        let p = stream_triad(1_000_000);
        // STREAM must be bandwidth-limited and achieve a large fraction of
        // peak (it is the benchmark that *defines* achievable peak).
        assert!(p.bandwidth_limited_on(&dram));
        assert!(p.achieved_bw_gbps(&dram) > 0.9 * dram.write_bw_gbps);
    }

    #[test]
    fn pchase_is_latency_bound_on_slow_memory() {
        let optane = presets::optane_pmm(1 << 30);
        let p = pchase(1_000_000);
        assert!(!p.bandwidth_limited_on(&optane));
        // Achieved bandwidth of a dependent chain is far below peak.
        assert!(p.achieved_bw_gbps(&optane) < 0.2 * optane.read_bw_gbps);
    }

    #[test]
    fn executable_triad_computes_the_triad() {
        let b = vec![1.0; 100];
        let c = vec![2.0; 100];
        let mut a = vec![0.0; 100];
        let sum = run_stream_triad(&mut a, &b, &c, 3.0);
        assert!(a.iter().all(|&x| (x - 7.0).abs() < 1e-12));
        assert!((sum - 700.0).abs() < 1e-9);
    }

    #[test]
    fn chase_cycle_is_a_single_cycle() {
        let next = chase_cycle(1000, 42);
        let mut seen = vec![false; 1000];
        let mut idx = 0u64;
        for _ in 0..1000 {
            assert!(!seen[idx as usize], "revisited before full cycle");
            seen[idx as usize] = true;
            idx = next[idx as usize];
        }
        assert_eq!(idx, 0, "must return to start after visiting all");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pchase_lands_where_the_cycle_says() {
        let next = chase_cycle(64, 7);
        let mut idx = 0u64;
        for _ in 0..100 {
            idx = next[idx as usize];
        }
        assert_eq!(run_pchase(&next, 100), idx);
        assert_eq!(run_pchase(&[], 10), 0);
    }
}
