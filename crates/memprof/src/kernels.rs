//! Calibration kernels: STREAM triad and pointer chase.
//!
//! The paper measures its model-correction constants against two
//! microbenchmarks with known behaviour: STREAM (pure bandwidth, maximal
//! memory concurrency) and pChase (pure latency, a single dependent
//! chain). Here the kernels are expressed as ground-truth access profiles
//! fed through the same sampling and timing paths as application tasks.

use tahoe_hms::AccessProfile;

/// Memory-level parallelism of a hardware-prefetched streaming loop.
pub const STREAM_MLP: f64 = 16.0;

/// STREAM triad over `n` elements-per-array of 64-byte lines:
/// `a[i] = b[i] + s * c[i]` reads two arrays and writes one.
pub fn stream_triad(lines_per_array: u64) -> AccessProfile {
    AccessProfile::new(2 * lines_per_array, lines_per_array, STREAM_MLP)
}

/// Pointer chase over `n` nodes: `n` fully dependent loads, no stores,
/// no memory-level parallelism.
pub fn pchase(nodes: u64) -> AccessProfile {
    AccessProfile::pointer_chase(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::presets;

    #[test]
    fn stream_shape() {
        let p = stream_triad(1000);
        assert_eq!(p.loads, 2000);
        assert_eq!(p.stores, 1000);
        assert!(p.mlp >= 8.0);
    }

    #[test]
    fn stream_saturates_bandwidth_on_dram() {
        let dram = presets::dram(1 << 30);
        let p = stream_triad(1_000_000);
        // STREAM must be bandwidth-limited and achieve a large fraction of
        // peak (it is the benchmark that *defines* achievable peak).
        assert!(p.bandwidth_limited_on(&dram));
        assert!(p.achieved_bw_gbps(&dram) > 0.9 * dram.write_bw_gbps);
    }

    #[test]
    fn pchase_is_latency_bound_on_slow_memory() {
        let optane = presets::optane_pmm(1 << 30);
        let p = pchase(1_000_000);
        assert!(!p.bandwidth_limited_on(&optane));
        // Achieved bandwidth of a dependent chain is far below peak.
        assert!(p.achieved_bw_gbps(&optane) < 0.2 * optane.read_bw_gbps);
    }
}
