//! Sampling-based memory profiling for the Tahoe reproduction.
//!
//! The paper's runtime learns memory behaviour from *hardware performance
//! counters in sampling mode* (Intel PEBS / AMD IBS): every N-th
//! load/store event is captured with the memory address it touched, and
//! addresses are mapped back to the data objects they fall in. Sampling is
//! cheap but lossy — it undercounts, it is noisy, and its duty-cycle view
//! of time is approximate. The paper compensates with per-platform
//! constant factors (`CF_bw`, `CF_lat`) calibrated once against STREAM and
//! a pointer-chasing benchmark.
//!
//! This crate reproduces that pipeline against the simulated memory
//! system:
//!
//! * [`sampler`] — turns a task's *ground-truth* access profile into the
//!   noisy, undercounted view a sampling counter would deliver.
//! * [`aggregate`] — the profile database keyed by (task class × data
//!   object); task-parallel programs have too many task instances to
//!   profile each one, so profiles are learned from the first few
//!   instances of a class and reused (the paper's task-classification
//!   idea).
//! * [`kernels`] — the STREAM-triad and pointer-chase calibration kernels
//!   as ground-truth profiles.
//! * [`calibrate`] — derives `CF_bw`, `CF_lat` and the peak NVM bandwidth
//!   from the kernels, once per (simulated) platform.
//! * [`wallclock`] — the measured-mode sibling: runs the *executable*
//!   kernels on real buffers and fits a `TierSpec` + correction factors
//!   from wall-clock timings.

// Unsafe is confined to the wall-clock calibration's byte→word views
// (`wallclock`); each site carries `#[allow(unsafe_code)]` + SAFETY.
#![deny(unsafe_code)]

pub mod aggregate;
pub mod calibrate;
pub mod kernels;
pub mod sampler;
pub mod wallclock;

pub use aggregate::{ObjClassStats, ProfileDb};
pub use calibrate::Calibration;
pub use sampler::{SampledObservation, Sampler, SamplerConfig};
pub use wallclock::{MeasuredTier, WallClockCalibration, WallClockConfig};
