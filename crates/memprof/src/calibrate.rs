//! Offline platform calibration (runs once per platform).
//!
//! Reproduces the paper's offline step:
//!
//! * `CF_bw`  = measured STREAM time ÷ time predicted from *sampled*
//!   counts and the DRAM bandwidth — absorbs sampling undercount and
//!   everything the bandwidth model leaves out.
//! * `CF_lat` = measured pChase time ÷ (sampled count × DRAM latency) —
//!   same for the latency model.
//! * `BW_peak(NVM)` — STREAM's achieved bandwidth on the NVM tier, the
//!   reference point of the sensitivity thresholds.

use tahoe_hms::TierSpec;

use crate::kernels;
use crate::sampler::{Sampler, SamplerConfig};

/// Results of offline calibration: valid for every application run on the
/// same platform (pair of tier specs + sampler configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Correction for bandwidth-model predictions (≥ 1 when sampling
    /// undercounts).
    pub cf_bw: f64,
    /// Correction for latency-model predictions.
    pub cf_lat: f64,
    /// Peak achievable bandwidth on the NVM tier (GB/s), measured with
    /// STREAM.
    pub nvm_peak_bw_gbps: f64,
    /// Peak achievable bandwidth on the DRAM tier (GB/s).
    pub dram_peak_bw_gbps: f64,
}

impl Calibration {
    /// A neutral calibration (no corrections) for tests.
    pub fn identity(nvm_peak_bw_gbps: f64, dram_peak_bw_gbps: f64) -> Self {
        Calibration {
            cf_bw: 1.0,
            cf_lat: 1.0,
            nvm_peak_bw_gbps,
            dram_peak_bw_gbps,
        }
    }
}

/// Number of 64-byte lines per STREAM array used for calibration.
const STREAM_LINES: u64 = 4_000_000; // 256 MB per array
/// Number of pChase nodes used for calibration.
const PCHASE_NODES: u64 = 4_000_000;

/// Run the offline calibration against the given platform.
pub fn calibrate(dram: &TierSpec, nvm: &TierSpec, sampler_cfg: &SamplerConfig) -> Calibration {
    let mut sampler = Sampler::new(sampler_cfg.clone());

    // --- CF_bw from STREAM on DRAM -------------------------------------
    let stream = kernels::stream_triad(STREAM_LINES);
    let measured_stream = stream.mem_time_ns(dram);
    let obs = sampler.observe(&stream, measured_stream, dram);
    // The runtime's naive prediction: sampled bytes at the device's
    // nominal bandwidth (it cannot see read/write asymmetry without the
    // split model, and it undercounts — CF_bw absorbs both).
    let predicted_stream = obs.est_bytes() / dram.read_bw_gbps;
    let cf_bw = if predicted_stream > 0.0 {
        measured_stream / predicted_stream
    } else {
        1.0
    };

    // --- CF_lat from pChase on DRAM ------------------------------------
    let chase = kernels::pchase(PCHASE_NODES);
    let measured_chase = chase.mem_time_ns(dram);
    let obs = sampler.observe(&chase, measured_chase, dram);
    let predicted_chase = obs.est_accesses() * dram.read_lat_ns;
    let cf_lat = if predicted_chase > 0.0 {
        measured_chase / predicted_chase
    } else {
        1.0
    };

    // --- Peak bandwidths from STREAM on each tier ----------------------
    let nvm_peak = stream.achieved_bw_gbps(nvm);
    let dram_peak = stream.achieved_bw_gbps(dram);

    Calibration {
        cf_bw,
        cf_lat,
        nvm_peak_bw_gbps: nvm_peak,
        dram_peak_bw_gbps: dram_peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::presets;

    fn cfg(capture: f64) -> SamplerConfig {
        SamplerConfig {
            interval: 1000,
            capture_ratio: capture,
            time_jitter: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn perfect_sampling_yields_cf_near_one_for_latency() {
        let dram = presets::dram(1 << 30);
        let nvm = presets::optane_pmm(1 << 30);
        let cal = calibrate(&dram, &nvm, &cfg(1.0));
        // pChase prediction is exact with perfect counts.
        assert!((cal.cf_lat - 1.0).abs() < 1e-3, "cf_lat = {}", cal.cf_lat);
        // STREAM prediction uses the read-bandwidth only; the measured
        // triad also pays the slower write stream, so CF_bw > 1 even with
        // perfect counts.
        assert!(cal.cf_bw >= 1.0);
    }

    #[test]
    fn undercounting_inflates_cf() {
        let dram = presets::dram(1 << 30);
        let nvm = presets::optane_pmm(1 << 30);
        let full = calibrate(&dram, &nvm, &cfg(1.0));
        let lossy = calibrate(&dram, &nvm, &cfg(0.5));
        // Losing half the samples should roughly double both corrections.
        assert!(
            lossy.cf_bw > 1.8 * full.cf_bw / 1.1,
            "cf_bw {}",
            lossy.cf_bw
        );
        assert!(
            (lossy.cf_lat / full.cf_lat - 2.0).abs() < 0.1,
            "cf_lat ratio {}",
            lossy.cf_lat / full.cf_lat
        );
    }

    #[test]
    fn peak_bandwidths_reflect_devices() {
        let dram = presets::dram(1 << 30);
        let nvm = presets::emulated_bw(0.5, 1 << 30).unwrap();
        let cal = calibrate(&dram, &nvm, &cfg(1.0));
        assert!(cal.dram_peak_bw_gbps > cal.nvm_peak_bw_gbps);
        assert!(
            (cal.dram_peak_bw_gbps / cal.nvm_peak_bw_gbps - 2.0).abs() < 0.05,
            "halved-bandwidth NVM should show ~half the peak"
        );
    }

    #[test]
    fn identity_calibration() {
        let c = Calibration::identity(3.0, 9.0);
        assert_eq!(c.cf_bw, 1.0);
        assert_eq!(c.cf_lat, 1.0);
        assert_eq!(c.nvm_peak_bw_gbps, 3.0);
    }
}
