//! Wall-clock calibration: fit a [`TierSpec`] from *measured* kernels.
//!
//! The virtual-time calibration in [`crate::calibrate`] works on modelled
//! numbers; this module is its measured-mode sibling. It runs the
//! executable STREAM-triad and pointer-chase kernels from
//! [`crate::kernels`] over caller-provided buffers — in measured mode
//! those are slices of the `mmap` tier arenas — and fits a device spec
//! plus the paper's `CF_bw`/`CF_lat` correction factors from the
//! wall-clock timings:
//!
//! * sustained bandwidth from the triad's bytes-per-nanosecond,
//! * dependent-access latency from the chase's nanoseconds-per-load,
//! * `CF_bw` / `CF_lat` as measured time over the analytic model's
//!   prediction on the *fitted* spec — the residual the roofline model
//!   cannot express on this machine.
//!
//! The module takes plain `&mut [u8]` buffers rather than arena types so
//! it has no dependency on `tahoe-realmem`; any memory works, which is
//! also what makes the fit testable on heap buffers.

use std::time::Instant;

use tahoe_hms::{HmsError, TierSpec, CACHELINE};

use crate::kernels;

/// Sizing knobs for one wall-clock measurement pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallClockConfig {
    /// `f64` elements per STREAM array (three arrays are carved from the
    /// buffer).
    pub stream_elems: usize,
    /// Nodes in the pointer-chase cycle.
    pub chase_nodes: usize,
    /// Dependent loads timed over the cycle.
    pub chase_steps: u64,
    /// Triad repetitions (timings are averaged over all of them).
    pub iters: u32,
}

impl WallClockConfig {
    /// Small-but-honest sizing for CI smoke runs: ~1.5 MB of streams +
    /// a 256 KB chase working set, well past L2 on any modern core.
    pub fn smoke() -> Self {
        WallClockConfig {
            stream_elems: 1 << 16,
            chase_nodes: 1 << 15,
            chase_steps: 300_000,
            iters: 4,
        }
    }

    /// Full calibration sizing (~24 MB streams, 8 MB chase).
    pub fn full() -> Self {
        WallClockConfig {
            stream_elems: 1 << 20,
            chase_nodes: 1 << 20,
            chase_steps: 2_000_000,
            iters: 8,
        }
    }

    /// Bytes of buffer [`measure_tier`] needs for this sizing (plus
    /// alignment slack).
    pub fn required_bytes(&self) -> u64 {
        (3 * self.stream_elems * 8 + self.chase_nodes * 8 + 64) as u64
    }
}

/// Raw wall-clock numbers from one tier's kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredTier {
    /// Sustained triad bandwidth, GB/s (== bytes/ns).
    pub stream_bw_gbps: f64,
    /// Per-dependent-load latency, ns.
    pub chase_lat_ns: f64,
    /// Total wall time of the timed triad iterations, ns.
    pub stream_wall_ns: f64,
    /// Total wall time of the timed chase, ns.
    pub chase_wall_ns: f64,
}

/// Run both kernels over `buf` and measure. The buffer is carved into
/// three triad arrays and one chase cycle; it must hold
/// [`WallClockConfig::required_bytes`]. Returns an error only when the
/// buffer is too small.
pub fn measure_tier(buf: &mut [u8], cfg: &WallClockConfig) -> Result<MeasuredTier, String> {
    if (buf.len() as u64) < cfg.required_bytes() {
        return Err(format!(
            "calibration buffer too small: {} < {} bytes",
            buf.len(),
            cfg.required_bytes()
        ));
    }
    // Aligned f64 view over the raw bytes (arena offsets are not
    // guaranteed 8-byte aligned; align_to sheds the ragged edges).
    // SAFETY: f64 tolerates any bit pattern and the aligned middle is
    // properly aligned by construction.
    #[allow(unsafe_code)]
    let (_, words, _) = unsafe { buf.align_to_mut::<f64>() };
    let n = cfg.stream_elems;
    let (abc, rest) = words.split_at_mut(3 * n);
    let (a, bc) = abc.split_at_mut(n);
    let (b, c) = bc.split_at_mut(n);

    // Deterministic non-trivial operands.
    for (i, x) in b.iter_mut().enumerate() {
        *x = (i % 1013) as f64 * 0.5;
    }
    for (i, x) in c.iter_mut().enumerate() {
        *x = (i % 911) as f64 * 0.25;
    }

    // Warm-up pass faults the pages in; not timed.
    kernels::run_stream_triad(a, b, c, 3.0);
    let start = Instant::now();
    for _ in 0..cfg.iters.max(1) {
        kernels::run_stream_triad(a, b, c, 3.0);
    }
    let stream_wall_ns = (start.elapsed().as_nanos() as f64).max(1.0);
    // Triad traffic: per element, 16 B read (b, c) + 8 B write (a). The
    // read-for-ownership of `a` is not counted, matching STREAM's own
    // accounting.
    let bytes = cfg.iters.max(1) as u64 * 24 * n as u64;
    let stream_bw_gbps = bytes as f64 / stream_wall_ns;

    // Chase cycle lives in the remaining words, bit-cast to u64 indices.
    // SAFETY: same-size plain-old-data reinterpretation.
    #[allow(unsafe_code)]
    let (_, chase_words, _) = unsafe { rest.align_to_mut::<u64>() };
    let nodes = cfg.chase_nodes.min(chase_words.len());
    let cycle = kernels::chase_cycle(nodes, 0xC0FFEE);
    chase_words[..nodes].copy_from_slice(&cycle);
    let chase_region = &chase_words[..nodes];
    // Short warm-up, then the timed dependent chain.
    kernels::run_pchase(chase_region, (cfg.chase_steps / 10).max(1));
    let start = Instant::now();
    kernels::run_pchase(chase_region, cfg.chase_steps.max(1));
    let chase_wall_ns = (start.elapsed().as_nanos() as f64).max(1.0);
    let chase_lat_ns = chase_wall_ns / cfg.chase_steps.max(1) as f64;

    Ok(MeasuredTier {
        stream_bw_gbps,
        chase_lat_ns,
        stream_wall_ns,
        chase_wall_ns,
    })
}

/// Fit a symmetric [`TierSpec`] from measured kernel numbers. The
/// kernels cannot separate read from write behaviour without hardware
/// counters, so the fitted spec is symmetric; asymmetry enters through
/// [`derive_scaled_spec`].
pub fn fit_tier_spec(
    name: &str,
    measured: &MeasuredTier,
    capacity: u64,
) -> Result<TierSpec, HmsError> {
    let spec = TierSpec::symmetric(
        name,
        measured.chase_lat_ns.max(1e-3),
        measured.stream_bw_gbps.max(1e-6),
        capacity,
    );
    spec.validate()?;
    Ok(spec)
}

/// Derive an emulated-NVM spec from a fitted DRAM spec by transplanting
/// a reference preset's DRAM→NVM ratios: the *shape* of the slowdown
/// comes from the device table, the *absolute scale* from this machine.
pub fn derive_scaled_spec(
    fitted_dram: &TierSpec,
    reference_dram: &TierSpec,
    reference_nvm: &TierSpec,
    capacity: u64,
) -> TierSpec {
    TierSpec {
        name: format!("{} (measured-scaled)", reference_nvm.name),
        read_lat_ns: fitted_dram.read_lat_ns
            * (reference_nvm.read_lat_ns / reference_dram.read_lat_ns),
        write_lat_ns: fitted_dram.write_lat_ns
            * (reference_nvm.write_lat_ns / reference_dram.write_lat_ns),
        read_bw_gbps: fitted_dram.read_bw_gbps
            * (reference_nvm.read_bw_gbps / reference_dram.read_bw_gbps),
        write_bw_gbps: fitted_dram.write_bw_gbps
            * (reference_nvm.write_bw_gbps / reference_dram.write_bw_gbps),
        capacity,
    }
}

/// A complete measured-mode calibration: fitted specs plus the paper's
/// correction factors.
#[derive(Debug, Clone, PartialEq)]
pub struct WallClockCalibration {
    /// Fitted fast-tier spec (capacity is the caller's budget).
    pub dram: TierSpec,
    /// Derived slow-tier spec.
    pub nvm: TierSpec,
    /// Measured STREAM time ÷ model-predicted time on the fitted spec.
    pub cf_bw: f64,
    /// Measured chase time ÷ (steps × fitted latency).
    pub cf_lat: f64,
    /// The raw measurement the fit came from.
    pub measured: MeasuredTier,
}

/// Fit everything from one tier measurement: spec, derived NVM spec, and
/// the correction factors closing the loop between the measurement and
/// the analytic model evaluated on the fitted spec.
pub fn fit_calibration(
    measured: &MeasuredTier,
    cfg: &WallClockConfig,
    reference_dram: &TierSpec,
    reference_nvm: &TierSpec,
    dram_capacity: u64,
    nvm_capacity: u64,
) -> Result<WallClockCalibration, HmsError> {
    let dram = fit_tier_spec("DRAM (measured)", measured, dram_capacity)?;
    let nvm = derive_scaled_spec(&dram, reference_dram, reference_nvm, nvm_capacity);
    nvm.validate()?;

    // CF_bw: what the roofline model predicts for the triad's profile on
    // the fitted spec, against the wall clock.
    let lines_per_array = (cfg.stream_elems as u64 * 8).div_ceil(CACHELINE);
    let triad_profile = kernels::stream_triad(lines_per_array);
    let predicted_stream = triad_profile.mem_time_ns(&dram) * cfg.iters.max(1) as f64;
    let cf_bw = if predicted_stream > 0.0 {
        measured.stream_wall_ns / predicted_stream
    } else {
        1.0
    };

    let predicted_chase = cfg.chase_steps.max(1) as f64 * dram.read_lat_ns;
    let cf_lat = if predicted_chase > 0.0 {
        measured.chase_wall_ns / predicted_chase
    } else {
        1.0
    };

    Ok(WallClockCalibration {
        dram,
        nvm,
        cf_bw,
        cf_lat,
        measured: *measured,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::presets;

    fn tiny() -> WallClockConfig {
        WallClockConfig {
            stream_elems: 1 << 12,
            chase_nodes: 1 << 10,
            chase_steps: 20_000,
            iters: 2,
        }
    }

    #[test]
    fn measure_produces_positive_finite_numbers() {
        let cfg = tiny();
        let mut buf = vec![0u8; cfg.required_bytes() as usize];
        let m = measure_tier(&mut buf, &cfg).unwrap();
        assert!(m.stream_bw_gbps > 0.0 && m.stream_bw_gbps.is_finite());
        assert!(m.chase_lat_ns > 0.0 && m.chase_lat_ns.is_finite());
        assert!(m.stream_wall_ns > 0.0 && m.chase_wall_ns > 0.0);
    }

    #[test]
    fn too_small_buffer_is_rejected() {
        let cfg = tiny();
        let mut buf = vec![0u8; 16];
        assert!(measure_tier(&mut buf, &cfg).is_err());
    }

    #[test]
    fn fitted_spec_validates_and_mirrors_measurement() {
        let m = MeasuredTier {
            stream_bw_gbps: 12.5,
            chase_lat_ns: 85.0,
            stream_wall_ns: 1e6,
            chase_wall_ns: 1e6,
        };
        let s = fit_tier_spec("t", &m, 1 << 20).unwrap();
        assert_eq!(s.read_bw_gbps, 12.5);
        assert_eq!(s.read_lat_ns, 85.0);
        assert_eq!(s.read_lat_ns, s.write_lat_ns);
        s.validate().unwrap();
    }

    #[test]
    fn derived_spec_keeps_preset_ratios() {
        let fitted = TierSpec::symmetric("m", 50.0, 20.0, 1 << 20);
        let rd = presets::dram(1 << 20);
        let rn = presets::optane_pmm(1 << 20);
        let nvm = derive_scaled_spec(&fitted, &rd, &rn, 1 << 22);
        // Optane read BW is 0.39x DRAM's; the derived spec preserves it.
        assert!((nvm.read_bw_gbps / fitted.read_bw_gbps - 0.39).abs() < 1e-9);
        assert!((nvm.read_lat_ns / fitted.read_lat_ns - 25.0).abs() < 1e-9);
        assert_eq!(nvm.capacity, 1 << 22);
        nvm.validate().unwrap();
    }

    #[test]
    fn end_to_end_fit_on_heap_buffers() {
        let cfg = tiny();
        let mut buf = vec![0u8; cfg.required_bytes() as usize];
        let m = measure_tier(&mut buf, &cfg).unwrap();
        let cal = fit_calibration(
            &m,
            &cfg,
            &presets::dram(1 << 20),
            &presets::optane_pmm(1 << 20),
            1 << 20,
            1 << 22,
        )
        .unwrap();
        cal.dram.validate().unwrap();
        cal.nvm.validate().unwrap();
        assert!(cal.cf_bw > 0.0 && cal.cf_bw.is_finite());
        assert!(cal.cf_lat > 0.0 && cal.cf_lat.is_finite());
        // The derived NVM must be strictly slower than the fitted DRAM.
        assert!(cal.nvm.read_bw_gbps < cal.dram.read_bw_gbps);
        assert!(cal.nvm.read_lat_ns > cal.dram.read_lat_ns);
    }
}
