//! The profile database: per-(task class × data object) statistics.
//!
//! A task-parallel run creates thousands of task instances but only a
//! handful of task *classes*. The paper profiles the first few instances
//! of each class and reuses the averaged profile for every later
//! instance. `ProfileDb` is that store.

use std::collections::HashMap;

use tahoe_hms::{Ns, ObjectId};
use tahoe_taskrt::TaskClassId;

use crate::sampler::SampledObservation;

/// Accumulated observations for one (class, object) pair.
#[derive(Debug, Clone, Default, PartialEq)]
struct Acc {
    sum_loads: f64,
    sum_stores: f64,
    sum_active_ns: f64,
    /// Access-weighted concurrency numerator (Σ concurrency × accesses).
    sum_conc_weighted: f64,
    sum_accesses: f64,
    instances: u32,
}

/// Averaged per-(class, object) statistics handed to the models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjClassStats {
    /// Mean estimated cache-line loads per task instance.
    pub mean_loads: f64,
    /// Mean estimated cache-line stores per task instance.
    pub mean_stores: f64,
    /// Mean estimated active (memory-occupied) time per instance, ns.
    pub mean_active_ns: Ns,
    /// Access-weighted mean concurrency of the traffic (≥ 1).
    pub mean_concurrency: f64,
    /// Number of instances folded in.
    pub instances: u32,
}

impl ObjClassStats {
    /// Mean estimated accesses per instance.
    pub fn mean_accesses(&self) -> f64 {
        self.mean_loads + self.mean_stores
    }

    /// Mean estimated bytes per instance.
    pub fn mean_bytes(&self) -> f64 {
        self.mean_accesses() * tahoe_hms::CACHELINE as f64
    }

    /// Mean consumed bandwidth per instance (the paper's Eq. (1)).
    pub fn mean_bw_gbps(&self) -> f64 {
        if self.mean_active_ns <= 0.0 {
            0.0
        } else {
            self.mean_bytes() / self.mean_active_ns
        }
    }
}

/// Profile store keyed by (task class, data object).
#[derive(Debug, Default)]
pub struct ProfileDb {
    map: HashMap<(TaskClassId, ObjectId), Acc>,
    class_instances: HashMap<TaskClassId, u32>,
}

impl ProfileDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that one more instance of `class` has been profiled (called
    /// once per task, independent of how many objects it touches).
    pub fn record_instance(&mut self, class: TaskClassId) {
        *self.class_instances.entry(class).or_insert(0) += 1;
    }

    /// Fold one observation of `class` touching `object` into the store.
    pub fn record(&mut self, class: TaskClassId, object: ObjectId, obs: &SampledObservation) {
        let acc = self.map.entry((class, object)).or_default();
        acc.sum_loads += obs.est_loads;
        acc.sum_stores += obs.est_stores;
        acc.sum_active_ns += obs.est_active_ns;
        acc.sum_conc_weighted += obs.est_concurrency * obs.est_accesses();
        acc.sum_accesses += obs.est_accesses();
        acc.instances += 1;
    }

    /// Averaged stats for `(class, object)`, if any instance was seen.
    pub fn get(&self, class: TaskClassId, object: ObjectId) -> Option<ObjClassStats> {
        self.map.get(&(class, object)).map(|acc| {
            let n = acc.instances as f64;
            ObjClassStats {
                mean_loads: acc.sum_loads / n,
                mean_stores: acc.sum_stores / n,
                mean_active_ns: acc.sum_active_ns / n,
                mean_concurrency: if acc.sum_accesses > 0.0 {
                    (acc.sum_conc_weighted / acc.sum_accesses).max(1.0)
                } else {
                    1.0
                },
                instances: acc.instances,
            }
        })
    }

    /// Number of profiled instances of `class`.
    pub fn instances_of(&self, class: TaskClassId) -> u32 {
        self.class_instances.get(&class).copied().unwrap_or(0)
    }

    /// Whether `class` has been profiled at least `min_instances` times
    /// (the paper profiles a few instances per class, then stops).
    pub fn is_profiled(&self, class: TaskClassId, min_instances: u32) -> bool {
        self.instances_of(class) >= min_instances
    }

    /// Every object with any recorded traffic, ascending.
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self.map.keys().map(|&(_, o)| o).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Every (class, object) pair recorded, sorted.
    pub fn pairs(&self) -> Vec<(TaskClassId, ObjectId)> {
        let mut v: Vec<(TaskClassId, ObjectId)> = self.map.keys().copied().collect();
        v.sort();
        v
    }

    /// Clear everything (re-profiling after workload variation).
    pub fn clear(&mut self) {
        self.map.clear();
        self.class_instances.clear();
    }

    /// Number of (class, object) entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(loads: f64, stores: f64, active: f64) -> SampledObservation {
        SampledObservation {
            est_loads: loads,
            est_stores: stores,
            est_active_ns: active,
            est_concurrency: 4.0,
            samples: 1,
        }
    }

    const C: TaskClassId = TaskClassId(0);
    const D: TaskClassId = TaskClassId(1);
    const O: ObjectId = ObjectId(0);
    const P: ObjectId = ObjectId(1);

    #[test]
    fn averages_over_instances() {
        let mut db = ProfileDb::new();
        db.record(C, O, &obs(100.0, 50.0, 1000.0));
        db.record(C, O, &obs(300.0, 150.0, 3000.0));
        let s = db.get(C, O).unwrap();
        assert_eq!(s.instances, 2);
        assert!((s.mean_loads - 200.0).abs() < 1e-12);
        assert!((s.mean_stores - 100.0).abs() < 1e-12);
        assert!((s.mean_active_ns - 2000.0).abs() < 1e-12);
    }

    #[test]
    fn pairs_are_independent() {
        let mut db = ProfileDb::new();
        db.record(C, O, &obs(10.0, 0.0, 10.0));
        db.record(C, P, &obs(20.0, 0.0, 10.0));
        db.record(D, O, &obs(30.0, 0.0, 10.0));
        assert_eq!(db.len(), 3);
        assert!((db.get(C, P).unwrap().mean_loads - 20.0).abs() < 1e-12);
        assert!((db.get(D, O).unwrap().mean_loads - 30.0).abs() < 1e-12);
        assert!(db.get(D, P).is_none());
        assert_eq!(db.objects(), vec![O, P]);
    }

    #[test]
    fn instance_counting_gates_profiling() {
        let mut db = ProfileDb::new();
        assert!(!db.is_profiled(C, 2));
        db.record_instance(C);
        assert!(!db.is_profiled(C, 2));
        db.record_instance(C);
        assert!(db.is_profiled(C, 2));
        assert_eq!(db.instances_of(C), 2);
        assert_eq!(db.instances_of(D), 0);
    }

    #[test]
    fn bandwidth_from_mean_stats() {
        let mut db = ProfileDb::new();
        // 1e6 lines over 6.4e6 ns = 10 GB/s.
        db.record(C, O, &obs(1.0e6, 0.0, 6.4e6));
        let s = db.get(C, O).unwrap();
        assert!((s.mean_bw_gbps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn clear_resets_everything() {
        let mut db = ProfileDb::new();
        db.record(C, O, &obs(1.0, 1.0, 1.0));
        db.record_instance(C);
        db.clear();
        assert!(db.is_empty());
        assert_eq!(db.instances_of(C), 0);
    }
}
