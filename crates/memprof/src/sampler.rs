//! Emulation of a sampling performance counter (PEBS/IBS style).
//!
//! A real sampling counter captures one out of every `interval` qualifying
//! events, and some fraction of events escape attribution entirely
//! (skid, buffer overflows, unmappable addresses). The runtime multiplies
//! sample counts back by the interval to estimate totals, so the estimate
//! is unbiased up to the *capture ratio* — a systematic undercount that
//! the paper's calibrated constant factors absorb.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use tahoe_hms::{AccessProfile, Ns, TierSpec};

/// Configuration of the emulated sampling counter.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Sampling interval: one of every `interval` events is captured.
    /// The paper uses an interval of 1000 CPU cycles.
    pub interval: u64,
    /// Fraction of events that are attributable at all (captures PEBS
    /// skid and unmappable samples). 1.0 = perfect attribution.
    pub capture_ratio: f64,
    /// Relative jitter of the duty-cycle (active time) measurement.
    pub time_jitter: f64,
    /// RNG seed (profiling runs are deterministic per seed).
    pub seed: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            interval: 1000,
            capture_ratio: 0.85,
            time_jitter: 0.05,
            seed: 0x7a40e,
        }
    }
}

/// What the profiler observed about one task's traffic to one object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledObservation {
    /// Estimated cache-line loads (samples × interval ÷ capture losses).
    pub est_loads: f64,
    /// Estimated cache-line stores.
    pub est_stores: f64,
    /// Estimated time the object was actively being accessed
    /// (the `#samples_with_accesses / #samples × phase_time` term of the
    /// paper's bandwidth-consumption equation), in ns.
    pub est_active_ns: Ns,
    /// Estimated memory-level concurrency of the access stream: how many
    /// accesses were in flight on average, inferred from counts × the
    /// resident tier's latency over the active time (1.0 = a fully
    /// dependent chain). Task-parallel kernels overlap their misses; the
    /// latency-benefit model must not price overlapped misses as if they
    /// were serialized.
    pub est_concurrency: f64,
    /// Raw number of samples attributed to the object.
    pub samples: u64,
}

impl SampledObservation {
    /// Estimated total accesses.
    pub fn est_accesses(&self) -> f64 {
        self.est_loads + self.est_stores
    }

    /// Estimated bytes moved.
    pub fn est_bytes(&self) -> f64 {
        self.est_accesses() * tahoe_hms::CACHELINE as f64
    }

    /// Estimated consumed bandwidth in GB/s — the paper's Eq. (1):
    /// accessed bytes over the time the object was actively accessed.
    pub fn est_bw_gbps(&self) -> f64 {
        if self.est_active_ns <= 0.0 {
            0.0
        } else {
            self.est_bytes() / self.est_active_ns
        }
    }
}

/// The emulated sampling profiler.
#[derive(Debug)]
pub struct Sampler {
    cfg: SamplerConfig,
    rng: StdRng,
    metrics: tahoe_obs::Metrics,
}

impl Sampler {
    /// A sampler with the given configuration.
    pub fn new(cfg: SamplerConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Sampler {
            cfg,
            rng,
            metrics: tahoe_obs::Metrics::disabled(),
        }
    }

    /// Record profiling volume (`memprof.*` counters) into `metrics`.
    /// Sampling itself is unchanged — the counters track how many
    /// observations were taken and how many raw samples they attributed.
    pub fn set_metrics(&mut self, metrics: tahoe_obs::Metrics) {
        self.metrics = metrics;
    }

    /// The configuration in force.
    pub fn config(&self) -> &SamplerConfig {
        &self.cfg
    }

    /// Sample a true event count: `Binomial(truth, capture/interval)`
    /// approximated by its mean plus a Bernoulli on the fractional part —
    /// cheap, deterministic per seed, and within one sample of exact.
    fn sample_events(&mut self, truth: u64) -> u64 {
        let expect = truth as f64 * self.cfg.capture_ratio / self.cfg.interval as f64;
        let base = expect.floor();
        let frac = expect - base;
        let extra = if self.rng.random::<f64>() < frac {
            1
        } else {
            0
        };
        base as u64 + extra
    }

    /// Observe one task's ground-truth traffic to one object, given the
    /// ground-truth *active time* of that traffic (time the accesses
    /// occupied main memory — the simulator knows it exactly; hardware
    /// only knows it up to sampling jitter) and the tier the object was
    /// resident on while being profiled (needed to infer concurrency from
    /// the counts and the active time).
    pub fn observe(
        &mut self,
        truth: &AccessProfile,
        true_active_ns: Ns,
        resident: &TierSpec,
    ) -> SampledObservation {
        let load_samples = self.sample_events(truth.loads);
        let store_samples = self.sample_events(truth.stores);
        // The runtime scales samples back up by the interval; the capture
        // ratio is *unknown* to it (that is what CF_bw/CF_lat correct).
        let est_loads = (load_samples * self.cfg.interval) as f64;
        let est_stores = (store_samples * self.cfg.interval) as f64;
        let jitter = 1.0 + self.cfg.time_jitter * (self.rng.random::<f64>() * 2.0 - 1.0);
        let est_active_ns = (true_active_ns * jitter).max(0.0);
        // Concurrency = serialized latency demand over observed active
        // time: 1 for dependent chains, ≈MLP for prefetched streams.
        let serialized = est_loads * resident.read_lat_ns + est_stores * resident.write_lat_ns;
        let est_concurrency = if est_active_ns > 0.0 {
            (serialized / est_active_ns).max(1.0)
        } else {
            1.0
        };
        let obs = SampledObservation {
            est_loads,
            est_stores,
            est_active_ns,
            est_concurrency,
            samples: load_samples + store_samples,
        };
        self.metrics.inc("memprof.observations");
        self.metrics.add("memprof.samples", obs.samples);
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::presets;

    fn dram() -> TierSpec {
        presets::dram(1 << 30)
    }

    fn sampler(interval: u64, capture: f64) -> Sampler {
        Sampler::new(SamplerConfig {
            interval,
            capture_ratio: capture,
            time_jitter: 0.0,
            seed: 42,
        })
    }

    #[test]
    fn perfect_sampler_recovers_counts() {
        let mut s = sampler(1, 1.0);
        let truth = AccessProfile::streaming(12345, 678);
        let obs = s.observe(&truth, 1000.0, &dram());
        assert_eq!(obs.est_loads, 12345.0);
        assert_eq!(obs.est_stores, 678.0);
        assert_eq!(obs.est_active_ns, 1000.0);
    }

    #[test]
    fn estimates_are_near_truth_for_large_counts() {
        let mut s = sampler(1000, 1.0);
        let truth = AccessProfile::streaming(10_000_000, 5_000_000);
        let obs = s.observe(&truth, 1.0e6, &dram());
        let rel_l = (obs.est_loads - 1.0e7).abs() / 1.0e7;
        let rel_s = (obs.est_stores - 5.0e6).abs() / 5.0e6;
        assert!(rel_l < 1e-3, "load estimate off by {rel_l}");
        assert!(rel_s < 1e-3, "store estimate off by {rel_s}");
    }

    #[test]
    fn capture_ratio_biases_low() {
        let mut s = sampler(1000, 0.8);
        let truth = AccessProfile::streaming(10_000_000, 0);
        let obs = s.observe(&truth, 1.0e6, &dram());
        // Expect roughly 80% of truth.
        let ratio = obs.est_loads / 1.0e7;
        assert!((ratio - 0.8).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn small_counts_sample_to_zero_or_one() {
        let mut s = sampler(1000, 1.0);
        // 10 accesses with interval 1000: expectation 0.01 samples.
        let truth = AccessProfile::streaming(10, 0);
        let obs = s.observe(&truth, 100.0, &dram());
        assert!(obs.samples <= 1);
    }

    #[test]
    fn bandwidth_estimate_matches_eq1() {
        let mut s = sampler(1, 1.0);
        // 1e6 lines = 64 MB active for 6.4e6 ns → 10 GB/s.
        let truth = AccessProfile::streaming(1_000_000, 0);
        let obs = s.observe(&truth, 6.4e6, &dram());
        assert!((obs.est_bw_gbps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn determinism_per_seed() {
        let cfg = SamplerConfig::default();
        let truth = AccessProfile::streaming(123_456, 7_890);
        let a = Sampler::new(cfg.clone()).observe(&truth, 5.0e5, &dram());
        let b = Sampler::new(cfg).observe(&truth, 5.0e5, &dram());
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_count_attributed_samples() {
        let mut s = sampler(1, 1.0);
        let m = tahoe_obs::Metrics::enabled();
        s.set_metrics(m.clone());
        let truth = AccessProfile::streaming(100, 50);
        let obs = s.observe(&truth, 1000.0, &dram());
        let snap = m.snapshot();
        assert_eq!(snap.counter("memprof.observations"), Some(1));
        assert_eq!(snap.counter("memprof.samples"), Some(obs.samples));
        assert_eq!(obs.samples, 150);
    }

    #[test]
    fn zero_active_time_gives_zero_bandwidth() {
        let obs = SampledObservation {
            est_loads: 100.0,
            est_stores: 0.0,
            est_active_ns: 0.0,
            est_concurrency: 1.0,
            samples: 1,
        };
        assert_eq!(obs.est_bw_gbps(), 0.0);
    }
}
