//! Property tests for the sampling profiler: statistical soundness of the
//! estimates the whole decision pipeline depends on.

use proptest::prelude::*;

use tahoe_hms::{presets, AccessProfile};
use tahoe_memprof::{ProfileDb, Sampler, SamplerConfig};
use tahoe_taskrt::TaskClassId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn estimates_track_truth_within_sampling_error(
        loads in 100_000u64..50_000_000,
        stores in 100_000u64..50_000_000,
        interval in 100u64..5_000,
        seed in 0u64..1_000_000,
    ) {
        let mut s = Sampler::new(SamplerConfig {
            interval,
            capture_ratio: 1.0,
            time_jitter: 0.0,
            seed,
        });
        let truth = AccessProfile::streaming(loads, stores);
        let dram = presets::dram(1 << 30);
        let obs = s.observe(&truth, 1.0e6, &dram);
        // The mean-plus-Bernoulli sampler is within one interval of truth.
        prop_assert!((obs.est_loads - loads as f64).abs() <= interval as f64);
        prop_assert!((obs.est_stores - stores as f64).abs() <= interval as f64);
    }

    #[test]
    fn capture_ratio_scales_estimates(
        loads in 1_000_000u64..50_000_000,
        capture in 0.5f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let mut s = Sampler::new(SamplerConfig {
            interval: 1000,
            capture_ratio: capture,
            time_jitter: 0.0,
            seed,
        });
        let truth = AccessProfile::streaming(loads, 0);
        let dram = presets::dram(1 << 30);
        let obs = s.observe(&truth, 1.0e6, &dram);
        let expected = loads as f64 * capture;
        prop_assert!(
            (obs.est_loads - expected).abs() <= 1000.0,
            "estimate {} vs expected {}",
            obs.est_loads,
            expected
        );
    }

    #[test]
    fn concurrency_estimate_is_at_least_one_and_finite(
        loads in 0u64..10_000_000,
        stores in 0u64..10_000_000,
        active in 1.0f64..1e9,
        seed in 0u64..100_000,
    ) {
        let mut s = Sampler::new(SamplerConfig {
            interval: 1000,
            capture_ratio: 0.9,
            time_jitter: 0.05,
            seed,
        });
        let truth = AccessProfile::new(loads, stores, 4.0);
        let optane = presets::optane_pmm(1 << 30);
        let obs = s.observe(&truth, active, &optane);
        prop_assert!(obs.est_concurrency >= 1.0);
        prop_assert!(obs.est_concurrency.is_finite());
    }

    #[test]
    fn profile_db_mean_is_within_observation_range(
        observations in proptest::collection::vec(
            (0u64..1_000_000, 0u64..1_000_000, 1.0f64..1e6),
            1..20
        ),
    ) {
        let mut s = Sampler::new(SamplerConfig {
            interval: 1,
            capture_ratio: 1.0,
            time_jitter: 0.0,
            seed: 1,
        });
        let dram = presets::dram(1 << 30);
        let mut db = ProfileDb::new();
        let class = TaskClassId(0);
        let obj = tahoe_hms::ObjectId(0);
        let mut min_l = f64::INFINITY;
        let mut max_l = 0.0f64;
        for &(l, st, active) in &observations {
            let obs = s.observe(&AccessProfile::streaming(l, st), active, &dram);
            min_l = min_l.min(obs.est_loads);
            max_l = max_l.max(obs.est_loads);
            db.record(class, obj, &obs);
        }
        let stats = db.get(class, obj).expect("recorded");
        prop_assert!(stats.mean_loads >= min_l - 1e-9);
        prop_assert!(stats.mean_loads <= max_l + 1e-9);
        prop_assert_eq!(stats.instances as usize, observations.len());
    }
}
