//! Property tests for the task runtime: dependence derivation must yield
//! sound DAGs, the virtual-time scheduler must obey scheduling laws, and
//! the real executor must agree with both.

// The cross-check tests walk (task, task) index pairs over several
// parallel structures at once; explicit indices are the clearer idiom.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;

use tahoe_hms::{AccessProfile, ObjectId};
use tahoe_taskrt::wsexec::WsExecutor;
use tahoe_taskrt::{AccessMode, NullHooks, SimScheduler, TaskAccess, TaskGraph};

/// A compact description of a random task: which objects it touches and
/// how.
#[derive(Debug, Clone)]
struct RandTask {
    accesses: Vec<(u8, u8)>, // (object 0..6, mode 0..3)
    compute: u32,
}

fn task_strategy() -> impl Strategy<Value = RandTask> {
    (
        proptest::collection::vec((0u8..6, 0u8..3), 1..4),
        1u32..1000,
    )
        .prop_map(|(accesses, compute)| RandTask { accesses, compute })
}

fn build_graph(tasks: &[RandTask]) -> TaskGraph {
    let mut g = TaskGraph::new();
    let c = g.class("rand");
    for t in tasks {
        let accesses: Vec<TaskAccess> = t
            .accesses
            .iter()
            .map(|&(o, m)| {
                let mode = match m {
                    0 => AccessMode::Read,
                    1 => AccessMode::Write,
                    _ => AccessMode::ReadWrite,
                };
                TaskAccess::new(ObjectId(o as u32), mode, AccessProfile::streaming(16, 8))
            })
            .collect();
        g.add_task(c, accesses, t.compute as f64);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn derived_graphs_are_acyclic(tasks in proptest::collection::vec(task_strategy(), 1..60)) {
        let g = build_graph(&tasks);
        prop_assert!(g.verify_acyclic().is_ok());
    }

    #[test]
    fn scheduler_obeys_lower_bounds(
        tasks in proptest::collection::vec(task_strategy(), 1..60),
        workers in 1usize..8,
    ) {
        let g = build_graph(&tasks);
        let stats = SimScheduler::new(workers).run(&g, &mut NullHooks);
        let cp = g.critical_path_ns(|t| t.compute_ns);
        let work = g.total_work_ns(|t| t.compute_ns);
        // Makespan can never beat the critical path nor work/P.
        prop_assert!(stats.makespan_ns >= cp - 1e-6);
        prop_assert!(stats.makespan_ns >= work / workers as f64 - 1e-6);
        // Greedy list scheduling is within Graham's 2x bound of the
        // trivial lower bound max(cp, work/P).
        let lb = cp.max(work / workers as f64);
        prop_assert!(
            stats.makespan_ns <= 2.0 * lb + 1e-6,
            "makespan {} exceeds Graham bound (lb {})",
            stats.makespan_ns,
            lb
        );
        // Work conservation.
        let busy: f64 = stats.busy_ns.iter().sum();
        prop_assert!((busy - work).abs() < 1e-6);
        prop_assert_eq!(stats.tasks_executed as usize, g.len());
    }

    #[test]
    fn more_workers_never_hurt(
        tasks in proptest::collection::vec(task_strategy(), 1..50),
    ) {
        let g = build_graph(&tasks);
        let m1 = SimScheduler::new(1).run(&g, &mut NullHooks).makespan_ns;
        let m4 = SimScheduler::new(4).run(&g, &mut NullHooks).makespan_ns;
        // FIFO list scheduling on a DAG: not theoretically monotone in
        // general, but with identical dispatch order and no hooks it is
        // here; allow a tiny epsilon.
        prop_assert!(m4 <= m1 + 1e-6, "4 workers {m4} vs 1 worker {m1}");
    }

    #[test]
    fn ws_executor_runs_every_task_once_respecting_deps(
        tasks in proptest::collection::vec(task_strategy(), 1..40),
    ) {
        use std::sync::atomic::{AtomicU32, Ordering};
        let g = build_graph(&tasks);
        let ran: Vec<AtomicU32> = (0..g.len()).map(|_| AtomicU32::new(0)).collect();
        let violations = AtomicU32::new(0);
        WsExecutor::new(4).run(&g, |task| {
            // All predecessors must have completed.
            for p in g.preds(task.id) {
                if ran[p.index()].load(Ordering::Acquire) == 0 {
                    violations.fetch_add(1, Ordering::Relaxed);
                }
            }
            ran[task.id.index()].fetch_add(1, Ordering::Release);
        });
        prop_assert_eq!(violations.load(Ordering::Relaxed), 0, "dependence violated");
        prop_assert!(ran.iter().all(|r| r.load(Ordering::Relaxed) == 1));
    }

    // Cross-check against the sanitizer's independently built
    // happens-before closure: the bitset ancestor rows must agree exactly
    // with plain BFS reachability over the derived dependence edges.
    #[test]
    fn happens_before_closure_matches_bfs_reachability(
        tasks in proptest::collection::vec(task_strategy(), 1..40),
    ) {
        let g = build_graph(&tasks);
        let hb = tahoe_sanitize::HappensBefore::from_graph(&g);
        let n = g.len();
        // Reference closure: BFS from every task along predecessor edges.
        let mut reach = vec![vec![false; n]; n];
        for t in 0..n {
            let mut stack: Vec<usize> = g.preds(tahoe_taskrt::TaskId(t as u32))
                .iter().map(|p| p.index()).collect();
            while let Some(p) = stack.pop() {
                if !reach[t][p] {
                    reach[t][p] = true;
                    stack.extend(g.preds(tahoe_taskrt::TaskId(p as u32)).iter().map(|q| q.index()));
                }
            }
        }
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    hb.happens_before(tahoe_taskrt::TaskId(a as u32), tahoe_taskrt::TaskId(b as u32)),
                    reach[b][a],
                    "hb({}, {}) disagrees with BFS reachability", a, b
                );
            }
        }
    }

    // Soundness of dependence derivation, judged by the sanitizer: every
    // declared pair that conflicts on an object (at least one writer)
    // must come out *ordered* in the happens-before relation — the exact
    // property the dynamic race detector relies on.
    #[test]
    fn derived_deps_order_every_declared_conflict(
        tasks in proptest::collection::vec(task_strategy(), 1..40),
    ) {
        let g = build_graph(&tasks);
        let hb = tahoe_sanitize::HappensBefore::from_graph(&g);
        let writes = |m: u8| m == 1 || m == 2; // Write | ReadWrite
        for (i, a) in tasks.iter().enumerate() {
            for (j, b) in tasks.iter().enumerate().skip(i + 1) {
                let conflict = a.accesses.iter().any(|&(oa, ma)|
                    b.accesses.iter().any(|&(ob, mb)| oa == ob && (writes(ma) || writes(mb))));
                if conflict {
                    prop_assert!(
                        hb.ordered(tahoe_taskrt::TaskId(i as u32), tahoe_taskrt::TaskId(j as u32)),
                        "conflicting tasks {} and {} are unordered", i, j
                    );
                }
            }
        }
    }

    // Window barriers order tasks across windows even with no dependence
    // path between them.
    #[test]
    fn window_barriers_order_cross_window_tasks(
        sizes in proptest::collection::vec(1usize..6, 2..5),
    ) {
        let mut g = TaskGraph::new();
        let c = g.class("w");
        let mut window_of = Vec::new();
        for (w, &n) in sizes.iter().enumerate() {
            for k in 0..n {
                // Disjoint objects: no dependence edges at all.
                g.add_task(
                    c,
                    vec![TaskAccess::new(
                        ObjectId((w * 8 + k) as u32),
                        AccessMode::ReadWrite,
                        AccessProfile::EMPTY,
                    )],
                    1.0,
                );
                window_of.push(w as u32);
            }
            if w + 1 < sizes.len() {
                g.mark_window();
            }
        }
        let hb = tahoe_sanitize::HappensBefore::from_graph(&g);
        for a in 0..g.len() {
            for b in 0..g.len() {
                let (ta, tb) = (tahoe_taskrt::TaskId(a as u32), tahoe_taskrt::TaskId(b as u32));
                prop_assert_eq!(
                    hb.happens_before(ta, tb),
                    window_of[a] < window_of[b],
                    "window ordering wrong for tasks {} (w{}) and {} (w{})",
                    a, window_of[a], b, window_of[b]
                );
            }
        }
    }

    #[test]
    fn windows_partition_all_tasks(
        sizes in proptest::collection::vec(1usize..10, 1..8),
    ) {
        let mut g = TaskGraph::new();
        let c = g.class("w");
        for (w, &n) in sizes.iter().enumerate() {
            for _ in 0..n {
                g.add_task(
                    c,
                    vec![TaskAccess::new(
                        ObjectId(0),
                        AccessMode::ReadWrite,
                        AccessProfile::EMPTY,
                    )],
                    1.0,
                );
            }
            if w + 1 < sizes.len() {
                g.mark_window();
            }
        }
        prop_assert_eq!(g.window_count() as usize, sizes.len());
        let mut total = 0;
        for w in 0..g.window_count() {
            let tasks = g.window_tasks(w);
            prop_assert_eq!(tasks.len(), sizes[w as usize]);
            total += tasks.len();
        }
        prop_assert_eq!(total, g.len());
    }
}
