//! Deterministic event-driven multi-worker scheduler over virtual time.
//!
//! This is the execution engine for all timed experiments. It performs
//! list scheduling of the task graph on `P` virtual workers: whenever a
//! worker is idle and a task is ready, the lowest-id ready task is
//! dispatched (FIFO in submission order — the dispatch order real
//! work-sharing runtimes approximate). Task durations are *not* stored in
//! the graph; they are computed at dispatch time by a
//! [`SchedulerHooks`] implementation, which is how the data-placement
//! policy layer injects the effect of tier residency, migration stalls and
//! runtime overheads into the timeline.
//!
//! The simulation is single-threaded and fully deterministic: identical
//! inputs produce identical schedules, which the experiment harness relies
//! on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tahoe_hms::Ns;

use crate::graph::TaskGraph;
use crate::stats::SchedStats;
use crate::task::{TaskId, TaskSpec};

/// Callbacks through which the policy layer participates in scheduling.
///
/// All methods have defaults so simple simulations can implement only
/// `task_duration_ns`.
pub trait SchedulerHooks {
    /// Duration of `task` if it starts at `start` (compute + memory under
    /// the placement in force at that moment), excluding stalls.
    fn task_duration_ns(&mut self, task: &TaskSpec, start: Ns) -> Ns;

    /// Earliest time `task` may start, given it could otherwise start at
    /// `now` (used to model waiting for an in-flight migration of one of
    /// the task's objects). Must be `>= now`.
    fn task_earliest_start(&mut self, _task: &TaskSpec, now: Ns) -> Ns {
        now
    }

    /// Called once per dispatch round with the current ready queue (ids in
    /// dispatch order) — the policy's look-ahead and migration-issue
    /// point.
    fn on_dispatch_round(&mut self, _ready: &[TaskId], _now: Ns) {}

    /// Called when `task` begins executing.
    fn on_task_start(&mut self, _task: &TaskSpec, _start: Ns) {}

    /// Called when `task` finishes.
    fn on_task_finish(&mut self, _task: &TaskSpec, _finish: Ns) {}

    /// Called the first time any task of window `window` starts.
    fn on_window_start(&mut self, _window: u32, _now: Ns) {}
}

/// Hooks that execute every task with its `compute_ns` only (no memory
/// model). Useful for scheduler-only tests.
#[derive(Debug, Default, Clone)]
pub struct NullHooks;

impl SchedulerHooks for NullHooks {
    fn task_duration_ns(&mut self, task: &TaskSpec, _start: Ns) -> Ns {
        task.compute_ns
    }
}

/// Deterministic virtual-time scheduler for a [`TaskGraph`].
#[derive(Debug)]
pub struct SimScheduler {
    workers: usize,
}

/// Ordered f64 for use in binary heaps: virtual times in the simulator are
/// finite by construction.
#[derive(PartialEq, PartialOrd)]
struct Time(Ns);

impl Eq for Time {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("virtual times are never NaN")
    }
}

impl SimScheduler {
    /// A scheduler with `workers` virtual workers (>= 1).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        SimScheduler { workers }
    }

    /// Number of virtual workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `graph` to completion under `hooks`; returns schedule
    /// statistics (makespan, utilization, stalls).
    pub fn run<H: SchedulerHooks>(&self, graph: &TaskGraph, hooks: &mut H) -> SchedStats {
        let n = graph.len();
        let mut stats = SchedStats::new(self.workers);
        if n == 0 {
            return stats;
        }

        // Remaining predecessor counts.
        let mut remaining: Vec<u32> = (0..n)
            .map(|i| graph.preds(TaskId(i as u32)).len() as u32)
            .collect();
        // Time each task became ready (dependences satisfied).
        let mut ready_at: Vec<Ns> = vec![0.0; n];
        // Ready tasks, lowest id first.
        let mut ready: BinaryHeap<Reverse<TaskId>> = BinaryHeap::new();
        for t in graph.roots() {
            ready.push(Reverse(t));
        }
        // Idle workers: (free_at, worker_id), earliest first.
        let mut idle: BinaryHeap<Reverse<(Time, usize)>> =
            (0..self.workers).map(|w| Reverse((Time(0.0), w))).collect();
        // In-flight completions: (finish, task, worker).
        let mut inflight: BinaryHeap<Reverse<(Time, TaskId, usize)>> = BinaryHeap::new();

        let mut windows_started = vec![false; graph.window_count() as usize];
        let mut completed = 0usize;

        while completed < n {
            // Dispatch as long as a worker and a task are both available.
            while !ready.is_empty() && !idle.is_empty() {
                // Collect the ready ids for the hook (dispatch order).
                let ready_ids: Vec<TaskId> = {
                    let mut v: Vec<TaskId> = ready.iter().map(|r| r.0).collect();
                    v.sort_unstable();
                    v
                };
                let Reverse((Time(wfree), worker)) = idle.pop().expect("checked non-empty");
                let Reverse(tid) = ready.pop().expect("checked non-empty");
                let task = graph.task(tid);
                // A task cannot start before its worker is free *and* its
                // dependences are satisfied.
                let avail = wfree.max(ready_at[tid.index()]);
                hooks.on_dispatch_round(&ready_ids, avail);

                if !std::mem::replace(&mut windows_started[task.window as usize], true) {
                    hooks.on_window_start(task.window, avail);
                }

                let earliest = hooks.task_earliest_start(task, avail);
                debug_assert!(
                    earliest >= avail - 1e-9,
                    "earliest_start moved time backwards"
                );
                let start = earliest.max(avail);
                stats.stall_ns += start - avail;
                let dur = hooks.task_duration_ns(task, start);
                debug_assert!(dur >= 0.0, "negative task duration");
                hooks.on_task_start(task, start);
                let finish = start + dur;
                stats.busy_ns[worker] += dur;
                inflight.push(Reverse((Time(finish), tid, worker)));
            }

            // Advance to the next completion.
            let Reverse((Time(finish), tid, worker)) = inflight
                .pop()
                .expect("tasks pending but nothing in flight: dependence cycle?");
            let task = graph.task(tid);
            hooks.on_task_finish(task, finish);
            stats.makespan_ns = stats.makespan_ns.max(finish);
            stats.tasks_executed += 1;
            completed += 1;
            idle.push(Reverse((Time(finish), worker)));
            for &s in graph.succs(tid) {
                remaining[s.index()] -= 1;
                if remaining[s.index()] == 0 {
                    ready_at[s.index()] = finish;
                    ready.push(Reverse(s));
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{AccessMode, TaskAccess};
    use tahoe_hms::{AccessProfile, ObjectId};

    fn acc(o: u32) -> TaskAccess {
        TaskAccess::new(ObjectId(o), AccessMode::Write, AccessProfile::EMPTY)
    }

    fn inout(o: u32) -> TaskAccess {
        TaskAccess::new(ObjectId(o), AccessMode::ReadWrite, AccessProfile::EMPTY)
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for i in 0..4 {
            g.add_task(c, vec![acc(i)], 100.0);
        }
        let stats = SimScheduler::new(4).run(&g, &mut NullHooks);
        assert!((stats.makespan_ns - 100.0).abs() < 1e-9);
        assert_eq!(stats.tasks_executed, 4);
        assert!((stats.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chain_serializes() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for _ in 0..4 {
            g.add_task(c, vec![inout(0)], 100.0);
        }
        let stats = SimScheduler::new(4).run(&g, &mut NullHooks);
        assert!((stats.makespan_ns - 400.0).abs() < 1e-9);
        // Only one worker can ever be busy.
        assert!((stats.utilization() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn two_workers_halve_independent_work() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for i in 0..8 {
            g.add_task(c, vec![acc(i)], 50.0);
        }
        let stats = SimScheduler::new(2).run(&g, &mut NullHooks);
        assert!((stats.makespan_ns - 200.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_never_beats_critical_path() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        // Diamond: a -> (b, c) -> d
        g.add_task(c, vec![acc(0)], 10.0);
        g.add_task(
            c,
            vec![
                TaskAccess::new(ObjectId(0), AccessMode::Read, AccessProfile::EMPTY),
                acc(1),
            ],
            20.0,
        );
        g.add_task(
            c,
            vec![
                TaskAccess::new(ObjectId(0), AccessMode::Read, AccessProfile::EMPTY),
                acc(2),
            ],
            30.0,
        );
        g.add_task(
            c,
            vec![
                TaskAccess::new(ObjectId(1), AccessMode::Read, AccessProfile::EMPTY),
                TaskAccess::new(ObjectId(2), AccessMode::Read, AccessProfile::EMPTY),
            ],
            5.0,
        );
        let cp = g.critical_path_ns(|t| t.compute_ns);
        let stats = SimScheduler::new(8).run(&g, &mut NullHooks);
        assert!(stats.makespan_ns >= cp - 1e-9);
        assert!((stats.makespan_ns - 45.0).abs() < 1e-9); // 10 + 30 + 5
    }

    #[test]
    fn determinism_across_runs() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for i in 0..32 {
            g.add_task(c, vec![inout(i % 5)], (i % 7) as f64 * 3.0 + 1.0);
        }
        let a = SimScheduler::new(3).run(&g, &mut NullHooks);
        let b = SimScheduler::new(3).run(&g, &mut NullHooks);
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.busy_ns, b.busy_ns);
    }

    /// Hooks that stall the second task by 500 ns (as if waiting on a
    /// migration).
    struct StallSecond;
    impl SchedulerHooks for StallSecond {
        fn task_duration_ns(&mut self, task: &TaskSpec, _s: Ns) -> Ns {
            task.compute_ns
        }
        fn task_earliest_start(&mut self, task: &TaskSpec, now: Ns) -> Ns {
            if task.id == TaskId(1) {
                now + 500.0
            } else {
                now
            }
        }
    }

    #[test]
    fn stalls_are_accounted() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        g.add_task(c, vec![inout(0)], 100.0);
        g.add_task(c, vec![inout(0)], 100.0);
        let stats = SimScheduler::new(1).run(&g, &mut StallSecond);
        assert!((stats.makespan_ns - 700.0).abs() < 1e-9);
        assert!((stats.stall_ns - 500.0).abs() < 1e-9);
    }

    /// Hooks that record window-start events.
    #[derive(Default)]
    struct WindowRecorder(Vec<(u32, Ns)>);
    impl SchedulerHooks for WindowRecorder {
        fn task_duration_ns(&mut self, task: &TaskSpec, _s: Ns) -> Ns {
            task.compute_ns
        }
        fn on_window_start(&mut self, w: u32, now: Ns) {
            self.0.push((w, now));
        }
    }

    #[test]
    fn window_start_fires_once_per_window_in_order() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        g.add_task(c, vec![inout(0)], 10.0);
        g.add_task(c, vec![inout(0)], 10.0);
        g.mark_window();
        g.add_task(c, vec![inout(0)], 10.0);
        let mut rec = WindowRecorder::default();
        SimScheduler::new(2).run(&g, &mut rec);
        assert_eq!(rec.0.len(), 2);
        assert_eq!(rec.0[0].0, 0);
        assert_eq!(rec.0[1].0, 1);
        assert!((rec.0[1].1 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_completes_instantly() {
        let g = TaskGraph::new();
        let stats = SimScheduler::new(2).run(&g, &mut NullHooks);
        assert_eq!(stats.makespan_ns, 0.0);
        assert_eq!(stats.tasks_executed, 0);
    }

    #[test]
    fn work_conservation() {
        // Busy time must equal the sum of task durations regardless of
        // worker count.
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for i in 0..20 {
            g.add_task(c, vec![acc(i)], 7.0);
        }
        for p in [1, 2, 4, 16] {
            let stats = SimScheduler::new(p).run(&g, &mut NullHooks);
            let busy: f64 = stats.busy_ns.iter().sum();
            assert!((busy - 140.0).abs() < 1e-9, "p={p}");
        }
    }
}
