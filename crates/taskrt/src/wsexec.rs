//! Real work-stealing executor for data-annotated task graphs.
//!
//! The virtual-time scheduler ([`crate::simsched`]) produces the timed
//! results; this executor exists to demonstrate that the same task graphs
//! — dependence derivation, window structure, per-object pinning
//! discipline — execute correctly under *genuine* parallelism. It is a
//! classic Chase–Lev setup: one local deque per worker
//! (`crossbeam_deque::Worker`), a shared injector for roots and overflow,
//! and random-order stealing with exponential backoff when idle.
//!
//! Dependence counting uses release/acquire atomics: the decrement a
//! finishing task performs on each successor's pending-predecessor count
//! releases its writes, and the worker that drops the count to zero (and
//! will run the successor) acquires them — the successor observes every
//! predecessor's side effects.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crossbeam::deque::{Injector, Stealer, Worker};
use crossbeam::utils::Backoff;

use crate::graph::TaskGraph;
use crate::task::{TaskId, TaskSpec};

/// Statistics of one real-parallel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct WsStats {
    /// Tasks executed (must equal the graph size).
    pub tasks_executed: u64,
    /// Successful steals between workers.
    pub steals: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Total wall-clock ns workers spent blocked in the [`DataGate`]
    /// (summed across workers; zero when no gate is used).
    pub gate_wait_ns: f64,
}

/// A data-readiness gate consulted before each task runs.
///
/// The parallel measured runtime uses this to hold a task whose objects
/// are mid-migration: the executor has already resolved the task's
/// *control* dependences (its predecessors ran), and the gate resolves
/// its *data* dependences (its bytes are not being copied between tiers
/// right now). The returned wall-clock wait is the paper's *exposed*
/// migration latency as the executor observes it.
pub trait DataGate: Sync {
    /// Block until `task`'s data is safe to access; return ns waited.
    fn wait_ready(&self, task: &TaskSpec) -> f64;
}

/// The trivial gate: data is always ready (pure compute graphs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoGate;

impl DataGate for NoGate {
    fn wait_ready(&self, _task: &TaskSpec) -> f64 {
        0.0
    }
}

/// A work-stealing executor with a fixed number of OS threads.
#[derive(Debug)]
pub struct WsExecutor {
    threads: usize,
    clamped: bool,
    metrics: tahoe_obs::Metrics,
}

impl WsExecutor {
    /// An executor with `threads` worker threads.
    ///
    /// `threads == 0` (e.g. a miscomputed `cores - N`) is clamped to one
    /// worker with a warning on stderr rather than panicking — a
    /// degraded run beats an aborted one, and the `wsexec.threads_clamped`
    /// counter records that it happened.
    pub fn new(threads: usize) -> Self {
        if threads == 0 {
            eprintln!("wsexec: 0 worker threads requested; clamping to 1");
        }
        WsExecutor {
            threads: threads.max(1),
            clamped: threads == 0,
            metrics: tahoe_obs::Metrics::disabled(),
        }
    }

    /// Record run statistics (`wsexec.*` counters/gauges) into `metrics`.
    /// Counters are folded in once per run, after the workers join — the
    /// steal path itself stays metric-free.
    pub fn with_metrics(mut self, metrics: tahoe_obs::Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute every task of `graph`, calling `work(task)` exactly once
    /// per task, respecting all derived dependences.
    ///
    /// `work` receives the [`TaskSpec`] and dispatches on class/accesses;
    /// shared state belongs to the caller (use atomics or locks — the
    /// executor only guarantees ordering along dependence edges).
    pub fn run<F>(&self, graph: &TaskGraph, work: F) -> WsStats
    where
        F: Fn(&TaskSpec) + Sync,
    {
        self.run_window(graph, None, &NoGate, |_, t| work(t))
    }

    /// Execute `graph` — or just one of its windows — under a
    /// [`DataGate`], calling `work(worker, task)` exactly once per task.
    ///
    /// With `window: Some(w)` only that window's tasks run; dependences
    /// on earlier windows are treated as satisfied (the measured runtime
    /// executes windows as barriers, migrating between them). Each task
    /// first passes `gate.wait_ready` — the hook where the parallel
    /// measured path blocks on objects that are mid-migration — and the
    /// summed wait is reported as [`WsStats::gate_wait_ns`].
    pub fn run_window<G, F>(
        &self,
        graph: &TaskGraph,
        window: Option<u32>,
        gate: &G,
        work: F,
    ) -> WsStats
    where
        G: DataGate + ?Sized,
        F: Fn(usize, &TaskSpec) + Sync,
    {
        self.run_window_traced(graph, window, gate, None, work)
    }

    /// [`run_window`](Self::run_window) with an optional flight recorder:
    /// every successful steal (injector or peer acquisition) records the
    /// wall-clock ns the worker spent searching into the recorder's
    /// `steal_ns` histogram on that worker's lane. The search timestamp
    /// is only taken when a recorder is present, so the untraced hot path
    /// is unchanged.
    pub fn run_window_traced<G, F>(
        &self,
        graph: &TaskGraph,
        window: Option<u32>,
        gate: &G,
        recorder: Option<&tahoe_obs::FlightRecorder>,
        work: F,
    ) -> WsStats
    where
        G: DataGate + ?Sized,
        F: Fn(usize, &TaskSpec) + Sync,
    {
        let n = graph.len();
        let started = Instant::now();
        if self.clamped {
            self.metrics.inc("wsexec.threads_clamped");
        }
        let in_set: Vec<bool> = match window {
            None => vec![true; n],
            Some(w) => {
                let mut mask = vec![false; n];
                for t in graph.window_tasks(w) {
                    mask[t.index()] = true;
                }
                mask
            }
        };
        let set_size = in_set.iter().filter(|&&b| b).count();
        if set_size == 0 {
            return WsStats {
                tasks_executed: 0,
                steals: 0,
                elapsed: started.elapsed(),
                gate_wait_ns: 0.0,
            };
        }

        // Pending counts consider only in-set predecessors: an earlier
        // window has fully executed by the time its successor window is
        // dispatched (windows are barriers).
        let pending: Vec<AtomicU32> = (0..n)
            .map(|i| {
                let p = if in_set[i] {
                    graph
                        .preds(TaskId(i as u32))
                        .iter()
                        .filter(|p| in_set[p.index()])
                        .count()
                } else {
                    0
                };
                AtomicU32::new(p as u32)
            })
            .collect();
        let remaining = AtomicUsize::new(set_size);
        let executed = AtomicU64::new(0);
        let steals = AtomicU64::new(0);
        // Gate waits are f64 ns; whole-ns resolution is plenty for a sum.
        let gate_wait = AtomicU64::new(0);

        let injector: Injector<TaskId> = Injector::new();
        for i in 0..n {
            if in_set[i] && pending[i].load(Ordering::Relaxed) == 0 {
                injector.push(TaskId(i as u32));
            }
        }

        let locals: Vec<Worker<TaskId>> = (0..self.threads).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<TaskId>> = locals.iter().map(|w| w.stealer()).collect();

        std::thread::scope(|scope| {
            for (me, local) in locals.into_iter().enumerate() {
                let injector = &injector;
                let stealers = &stealers;
                let pending = &pending;
                let in_set = &in_set;
                let remaining = &remaining;
                let executed = &executed;
                let steals = &steals;
                let gate_wait = &gate_wait;
                let work = &work;
                scope.spawn(move || {
                    let backoff = Backoff::new();
                    loop {
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        // Local first, then injector, then peers.
                        let task = local.pop().or_else(|| {
                            let search_t0 = recorder.map(|_| Instant::now());
                            std::iter::repeat_with(|| {
                                injector.steal_batch_and_pop(&local).or_else(|| {
                                    stealers
                                        .iter()
                                        .enumerate()
                                        .filter(|(i, _)| *i != me)
                                        .map(|(_, s)| s.steal())
                                        .collect()
                                })
                            })
                            .find(|s| !s.is_retry())
                            .and_then(|s| {
                                let got = s.success();
                                if got.is_some() {
                                    // Acquisitions from the injector or a
                                    // peer count as steals (local pops are
                                    // handled above and excluded).
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    if let (Some(rec), Some(t0)) = (recorder, search_t0) {
                                        rec.record(me, "steal_ns", t0.elapsed().as_nanos() as f64);
                                    }
                                }
                                got
                            })
                        });
                        match task {
                            Some(tid) => {
                                backoff.reset();
                                let spec = graph.task(tid);
                                let waited = gate.wait_ready(spec);
                                if waited > 0.0 {
                                    gate_wait.fetch_add(waited as u64, Ordering::Relaxed);
                                }
                                work(me, spec);
                                executed.fetch_add(1, Ordering::Relaxed);
                                for &s in graph.succs(tid) {
                                    if !in_set[s.index()] {
                                        continue;
                                    }
                                    // Release our writes; the zero-observer
                                    // acquires them before running `s`.
                                    if pending[s.index()].fetch_sub(1, Ordering::AcqRel) == 1 {
                                        local.push(s);
                                    }
                                }
                                remaining.fetch_sub(1, Ordering::AcqRel);
                            }
                            None => {
                                backoff.snooze();
                            }
                        }
                    }
                });
            }
        });

        let stats = WsStats {
            tasks_executed: executed.load(Ordering::Relaxed),
            steals: steals.load(Ordering::Relaxed),
            elapsed: started.elapsed(),
            gate_wait_ns: gate_wait.load(Ordering::Relaxed) as f64,
        };
        self.metrics.add("wsexec.tasks", stats.tasks_executed);
        self.metrics.add("wsexec.steals", stats.steals);
        self.metrics.inc("wsexec.runs");
        self.metrics
            .gauge_add("wsexec.elapsed_ns", stats.elapsed.as_nanos() as f64);
        self.metrics
            .gauge_add("wsexec.gate_wait_ns", stats.gate_wait_ns);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{AccessMode, TaskAccess};
    use std::sync::atomic::AtomicI64;
    use tahoe_hms::{AccessProfile, ObjectId};

    fn inout(o: u32) -> TaskAccess {
        TaskAccess::new(ObjectId(o), AccessMode::ReadWrite, AccessProfile::EMPTY)
    }

    fn wr(o: u32) -> TaskAccess {
        TaskAccess::new(ObjectId(o), AccessMode::Write, AccessProfile::EMPTY)
    }

    fn rd(o: u32) -> TaskAccess {
        TaskAccess::new(ObjectId(o), AccessMode::Read, AccessProfile::EMPTY)
    }

    #[test]
    fn executes_every_task_exactly_once() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for i in 0..200 {
            g.add_task(c, vec![wr(i)], 0.0);
        }
        let count = AtomicU64::new(0);
        let stats = WsExecutor::new(4).run(&g, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 200);
        assert_eq!(stats.tasks_executed, 200);
    }

    #[test]
    fn chain_order_is_respected() {
        // Each task appends its id; the chain forces total order.
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for _ in 0..64 {
            g.add_task(c, vec![inout(0)], 0.0);
        }
        let log = parking_lot::Mutex::new(Vec::new());
        WsExecutor::new(4).run(&g, |t| {
            log.lock().push(t.id.0);
        });
        let log = log.into_inner();
        let expect: Vec<u32> = (0..64).collect();
        assert_eq!(log, expect);
    }

    #[test]
    fn reduction_tree_computes_correct_sum() {
        // 16 leaves write their value to distinct objects; a join task
        // reads all and a final value is accumulated via dependences.
        let mut g = TaskGraph::new();
        let c = g.class("leaf");
        let j = g.class("join");
        for i in 0..16 {
            g.add_task(c, vec![wr(i)], 0.0);
        }
        let accesses: Vec<TaskAccess> = (0..16).map(rd).collect();
        g.add_task(j, accesses, 0.0);

        let cells: Vec<AtomicI64> = (0..16).map(|_| AtomicI64::new(0)).collect();
        let total = AtomicI64::new(-1);
        WsExecutor::new(8).run(&g, |t| {
            if t.class.0 == 0 {
                // leaf i writes i+1 into its cell
                let obj = t.accesses[0].object.0 as usize;
                cells[obj].store(obj as i64 + 1, Ordering::Release);
            } else {
                let sum: i64 = cells.iter().map(|c| c.load(Ordering::Acquire)).sum();
                total.store(sum, Ordering::Release);
            }
        });
        // 1 + 2 + ... + 16 = 136; visible because the join task depends on
        // every leaf.
        assert_eq!(total.load(Ordering::Acquire), 136);
    }

    #[test]
    fn single_thread_still_completes_diamonds() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        g.add_task(c, vec![wr(0)], 0.0);
        g.add_task(c, vec![rd(0), wr(1)], 0.0);
        g.add_task(c, vec![rd(0), wr(2)], 0.0);
        g.add_task(c, vec![rd(1), rd(2)], 0.0);
        let count = AtomicU64::new(0);
        let stats = WsExecutor::new(1).run(&g, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(stats.tasks_executed, 4);
    }

    #[test]
    fn empty_graph_returns_immediately() {
        let g = TaskGraph::new();
        let stats = WsExecutor::new(4).run(&g, |_| panic!("no tasks"));
        assert_eq!(stats.tasks_executed, 0);
    }

    #[test]
    fn metrics_record_per_run_aggregates() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for i in 0..50 {
            g.add_task(c, vec![wr(i)], 0.0);
        }
        let m = tahoe_obs::Metrics::enabled();
        let stats = WsExecutor::new(4).with_metrics(m.clone()).run(&g, |_| {});
        let snap = m.snapshot();
        assert_eq!(snap.counter("wsexec.tasks"), Some(50));
        assert_eq!(snap.counter("wsexec.runs"), Some(1));
        assert_eq!(snap.counter("wsexec.steals"), Some(stats.steals));
        assert!(snap.gauge("wsexec.elapsed_ns").unwrap() > 0.0);
    }

    #[test]
    fn zero_threads_clamps_to_one_and_counts() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for i in 0..10 {
            g.add_task(c, vec![wr(i)], 0.0);
        }
        let m = tahoe_obs::Metrics::enabled();
        let ex = WsExecutor::new(0).with_metrics(m.clone());
        assert_eq!(ex.threads(), 1);
        let stats = ex.run(&g, |_| {});
        assert_eq!(stats.tasks_executed, 10);
        assert_eq!(m.snapshot().counter("wsexec.threads_clamped"), Some(1));
        // A sane request must not trip the counter.
        let m2 = tahoe_obs::Metrics::enabled();
        WsExecutor::new(2).with_metrics(m2.clone()).run(&g, |_| {});
        assert_eq!(m2.snapshot().counter("wsexec.threads_clamped"), None);
    }

    #[test]
    fn run_window_executes_only_that_window() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        let mut w1 = Vec::new();
        for i in 0..8 {
            g.add_task(c, vec![wr(i)], 0.0);
        }
        g.mark_window();
        for i in 0..8 {
            // Window 1 reads window 0's objects: cross-window edges that
            // run_window must treat as satisfied.
            w1.push(g.add_task(c, vec![rd(i), wr(8 + i)], 0.0));
        }
        let ran = parking_lot::Mutex::new(Vec::new());
        let stats = WsExecutor::new(4).run_window(&g, Some(1), &NoGate, |_, t| {
            ran.lock().push(t.id);
        });
        assert_eq!(stats.tasks_executed, 8);
        let mut ran = ran.into_inner();
        ran.sort();
        assert_eq!(ran, w1, "exactly window 1's tasks ran");
    }

    #[test]
    fn gate_runs_before_every_task_and_waits_are_summed() {
        struct CountingGate {
            calls: AtomicU64,
        }
        impl DataGate for CountingGate {
            fn wait_ready(&self, _t: &TaskSpec) -> f64 {
                self.calls.fetch_add(1, Ordering::Relaxed);
                5.0
            }
        }
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for i in 0..20 {
            g.add_task(c, vec![wr(i)], 0.0);
        }
        let gate = CountingGate {
            calls: AtomicU64::new(0),
        };
        let stats = WsExecutor::new(4).run_window(&g, None, &gate, |_, _| {});
        assert_eq!(gate.calls.load(Ordering::Relaxed), 20);
        assert_eq!(stats.gate_wait_ns, 100.0);
    }

    #[test]
    fn worker_index_is_in_range() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for i in 0..100 {
            g.add_task(c, vec![wr(i)], 0.0);
        }
        let bad = AtomicU64::new(0);
        WsExecutor::new(3).run_window(&g, None, &NoGate, |w, _| {
            if w >= 3 {
                bad.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(bad.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn traced_run_records_one_steal_sample_per_steal() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for i in 0..200 {
            g.add_task(c, vec![wr(i)], 0.0);
        }
        let rec = tahoe_obs::FlightRecorder::new(4, 1 << 12, &["steal_ns"]);
        let stats = WsExecutor::new(4).run_window_traced(&g, None, &NoGate, Some(&rec), |_, _| {});
        let cap = rec.drain();
        assert_eq!(cap.total_dropped, 0);
        // Roots come off the injector, so any nonempty graph steals at
        // least once, and every steal records exactly one sample.
        assert!(stats.steals > 0);
        let (_, data) = cap
            .hists
            .iter()
            .find(|(k, _)| *k == "steal_ns")
            .expect("steal_ns histogram present");
        assert_eq!(data.count(), stats.steals);
        assert!(data.summary().max >= 1.0, "searches take nonzero time");
    }

    #[test]
    fn wide_graph_uses_parallelism_without_double_execution() {
        // 1000 independent tasks each flip a dedicated flag; any double
        // execution would flip one back.
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for i in 0..1000 {
            g.add_task(c, vec![wr(i)], 0.0);
        }
        let flags: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        WsExecutor::new(8).run(&g, |t| {
            flags[t.accesses[0].object.0 as usize].fetch_add(1, Ordering::Relaxed);
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }
}
