//! Look-ahead over the unfolding task graph.
//!
//! Proactive migration needs to know which tasks — and therefore which
//! data objects — will run *soon*. In a task-parallel runtime that
//! knowledge is the ready queue plus the tasks just behind it in the
//! dependence graph. [`Lookahead`] extracts a deterministic window of the
//! next `depth` tasks in expected dispatch order: the ready tasks first
//! (FIFO by id, matching the scheduler), then a breadth-first expansion
//! through successors.

use std::collections::HashSet;

use tahoe_hms::ObjectId;

use crate::graph::TaskGraph;
use crate::task::TaskId;

/// Extraction of the soon-to-run task window.
#[derive(Debug, Clone)]
pub struct Lookahead {
    depth: usize,
}

impl Lookahead {
    /// A look-ahead of `depth` tasks (>= 1).
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "look-ahead depth must be at least 1");
        Lookahead { depth }
    }

    /// The configured depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The next up-to-`depth` tasks in expected dispatch order, starting
    /// from the currently ready tasks. `done` must report whether a task
    /// has already finished (finished successors are skipped; they can
    /// appear when the window is recomputed mid-run).
    pub fn window<F>(&self, graph: &TaskGraph, ready: &[TaskId], done: F) -> Vec<TaskId>
    where
        F: Fn(TaskId) -> bool,
    {
        let mut out: Vec<TaskId> = Vec::with_capacity(self.depth);
        let mut seen: HashSet<TaskId> = HashSet::new();
        let mut frontier: Vec<TaskId> = ready.to_vec();
        frontier.sort_unstable();
        while !frontier.is_empty() && out.len() < self.depth {
            let mut next: Vec<TaskId> = Vec::new();
            for &t in &frontier {
                if out.len() >= self.depth {
                    break;
                }
                if !seen.insert(t) {
                    continue;
                }
                // Finished tasks are not emitted, but the walk continues
                // through them: their successors are the soon-to-run work.
                if !done(t) {
                    out.push(t);
                }
                for &s in graph.succs(t) {
                    if !seen.contains(&s) {
                        next.push(s);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        out
    }

    /// The distinct objects referenced by the window, in first-use order,
    /// each tagged with the position (0-based) of the first task in the
    /// window that uses it — the planner's proxy for "how soon".
    pub fn objects_in_window(
        &self,
        graph: &TaskGraph,
        window: &[TaskId],
    ) -> Vec<(ObjectId, usize)> {
        let mut out: Vec<(ObjectId, usize)> = Vec::new();
        let mut seen: HashSet<ObjectId> = HashSet::new();
        for (pos, &t) in window.iter().enumerate() {
            for a in &graph.task(t).accesses {
                if seen.insert(a.object) {
                    out.push((a.object, pos));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{AccessMode, TaskAccess};
    use tahoe_hms::AccessProfile;

    fn acc(o: u32, mode: AccessMode) -> TaskAccess {
        TaskAccess::new(ObjectId(o), mode, AccessProfile::streaming(1, 0))
    }

    /// Chain 0 -> 1 -> 2 -> 3 on object 0.
    fn chain(n: u32) -> TaskGraph {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for _ in 0..n {
            g.add_task(c, vec![acc(0, AccessMode::ReadWrite)], 1.0);
        }
        g
    }

    #[test]
    fn window_follows_chain() {
        let g = chain(5);
        let la = Lookahead::new(3);
        let w = la.window(&g, &[TaskId(0)], |_| false);
        assert_eq!(w, vec![TaskId(0), TaskId(1), TaskId(2)]);
    }

    #[test]
    fn window_respects_depth_one() {
        let g = chain(5);
        let la = Lookahead::new(1);
        assert_eq!(la.window(&g, &[TaskId(0)], |_| false), vec![TaskId(0)]);
    }

    #[test]
    fn window_skips_done_tasks() {
        let g = chain(5);
        let la = Lookahead::new(3);
        let w = la.window(&g, &[TaskId(1)], |t| t == TaskId(2));
        // Task 2 is done: it is skipped but traversed through, so the
        // window still fills to the requested depth.
        assert_eq!(w, vec![TaskId(1), TaskId(3), TaskId(4)]);
    }

    #[test]
    fn window_breadth_first_over_fan_out() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        // writer 0; readers 1,2,3; then writer 4 (joins).
        g.add_task(c, vec![acc(0, AccessMode::Write)], 1.0);
        for _ in 0..3 {
            g.add_task(c, vec![acc(0, AccessMode::Read)], 1.0);
        }
        g.add_task(c, vec![acc(0, AccessMode::Write)], 1.0);
        let la = Lookahead::new(4);
        let w = la.window(&g, &[TaskId(0)], |_| false);
        assert_eq!(w, vec![TaskId(0), TaskId(1), TaskId(2), TaskId(3)]);
    }

    #[test]
    fn window_larger_than_graph_is_whole_graph() {
        let g = chain(3);
        let la = Lookahead::new(64);
        assert_eq!(la.window(&g, &[TaskId(0)], |_| false).len(), 3);
    }

    #[test]
    fn objects_in_window_first_use_positions() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        g.add_task(c, vec![acc(7, AccessMode::Write)], 1.0);
        g.add_task(
            c,
            vec![acc(7, AccessMode::Read), acc(9, AccessMode::Write)],
            1.0,
        );
        let la = Lookahead::new(2);
        let w = la.window(&g, &[TaskId(0), TaskId(1)], |_| false);
        let objs = la.objects_in_window(&g, &w);
        assert_eq!(objs, vec![(ObjectId(7), 0), (ObjectId(9), 1)]);
    }

    #[test]
    fn empty_ready_gives_empty_window() {
        let g = chain(3);
        let la = Lookahead::new(4);
        assert!(la.window(&g, &[], |_| false).is_empty());
    }
}
