//! Schedule tracing: capture per-task execution intervals and render an
//! ASCII Gantt timeline.
//!
//! [`TraceHooks`] decorates any [`SchedulerHooks`] implementation, so the
//! Tahoe policy driver (or any baseline) can be traced without changes:
//!
//! ```
//! use tahoe_taskrt::{NullHooks, SimScheduler, TaskGraph, TaskAccess, AccessMode};
//! use tahoe_taskrt::trace::TraceHooks;
//! use tahoe_hms::{AccessProfile, ObjectId};
//!
//! let mut g = TaskGraph::new();
//! let c = g.class("step");
//! for _ in 0..4 {
//!     g.add_task(c, vec![TaskAccess::new(ObjectId(0), AccessMode::ReadWrite,
//!                                        AccessProfile::EMPTY)], 100.0);
//! }
//! let mut traced = TraceHooks::new(NullHooks);
//! SimScheduler::new(2).run(&g, &mut traced);
//! let trace = traced.into_trace();
//! assert_eq!(trace.spans().len(), 4);
//! println!("{}", trace.render(60));
//! ```

use tahoe_hms::Ns;

use crate::simsched::SchedulerHooks;
use crate::task::{TaskClassId, TaskId, TaskSpec};

/// One executed task's interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Which task.
    pub task: TaskId,
    /// Its class.
    pub class: TaskClassId,
    /// Its window.
    pub window: u32,
    /// Start time, virtual ns.
    pub start: Ns,
    /// Finish time, virtual ns.
    pub finish: Ns,
}

/// A captured schedule.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    spans: Vec<Span>,
    window_starts: Vec<(u32, Ns)>,
}

impl Trace {
    /// All task spans in finish order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Window-start events.
    pub fn window_starts(&self) -> &[(u32, Ns)] {
        &self.window_starts
    }

    /// End of the schedule (max finish).
    pub fn makespan(&self) -> Ns {
        self.spans.iter().map(|s| s.finish).fold(0.0, f64::max)
    }

    /// Render an ASCII timeline of `width` columns: one row per task
    /// class, each cell showing how many tasks of that class were running
    /// in that time slice (` `, `.`, `:`, `#` for 0, 1, 2–3, ≥4).
    pub fn render(&self, width: usize) -> String {
        let width = width.max(10);
        let end = self.makespan();
        if end <= 0.0 || self.spans.is_empty() {
            return String::from("(empty trace)\n");
        }
        let mut classes: Vec<TaskClassId> = self.spans.iter().map(|s| s.class).collect();
        classes.sort();
        classes.dedup();
        let mut out = String::new();
        for &class in &classes {
            let mut row = vec![0u32; width];
            for s in self.spans.iter().filter(|s| s.class == class) {
                let a = ((s.start / end) * width as f64) as usize;
                let b = (((s.finish / end) * width as f64).ceil() as usize).min(width);
                for cell in row.iter_mut().take(b.max(a + 1)).skip(a.min(width - 1)) {
                    *cell += 1;
                }
            }
            out.push_str(&format!("{:>8} |", format!("class{}", class.0)));
            for &c in &row {
                out.push(match c {
                    0 => ' ',
                    1 => '.',
                    2..=3 => ':',
                    _ => '#',
                });
            }
            out.push_str("|\n");
        }
        // Window boundary ruler.
        let mut ruler = vec![b' '; width];
        for &(_, t) in &self.window_starts {
            let x = (((t / end) * width as f64) as usize).min(width - 1);
            ruler[x] = b'|';
        }
        out.push_str(&format!(
            "{:>8} {}\n",
            "windows",
            String::from_utf8(ruler).expect("ascii ruler")
        ));
        out.push_str(&format!("{:>8} 0 .. {:.3} ms\n", "time", end / 1e6));
        out
    }
}

/// A [`SchedulerHooks`] decorator that records the schedule while
/// delegating every decision to the inner hooks.
#[derive(Debug)]
pub struct TraceHooks<H> {
    inner: H,
    trace: Trace,
}

impl<H> TraceHooks<H> {
    /// Wrap `inner`.
    pub fn new(inner: H) -> Self {
        TraceHooks {
            inner,
            trace: Trace::default(),
        }
    }

    /// Finish tracing and take the captured trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Access the inner hooks.
    pub fn inner(&self) -> &H {
        &self.inner
    }

    /// Split into the inner hooks and the captured trace.
    pub fn into_parts(self) -> (H, Trace) {
        (self.inner, self.trace)
    }
}

impl<H: SchedulerHooks> SchedulerHooks for TraceHooks<H> {
    fn task_duration_ns(&mut self, task: &TaskSpec, start: Ns) -> Ns {
        let dur = self.inner.task_duration_ns(task, start);
        self.trace.spans.push(Span {
            task: task.id,
            class: task.class,
            window: task.window,
            start,
            finish: start + dur,
        });
        dur
    }

    fn task_earliest_start(&mut self, task: &TaskSpec, now: Ns) -> Ns {
        self.inner.task_earliest_start(task, now)
    }

    fn on_dispatch_round(&mut self, ready: &[TaskId], now: Ns) {
        self.inner.on_dispatch_round(ready, now);
    }

    fn on_task_start(&mut self, task: &TaskSpec, start: Ns) {
        self.inner.on_task_start(task, start);
    }

    fn on_task_finish(&mut self, task: &TaskSpec, finish: Ns) {
        self.inner.on_task_finish(task, finish);
    }

    fn on_window_start(&mut self, window: u32, now: Ns) {
        self.trace.window_starts.push((window, now));
        self.inner.on_window_start(window, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;
    use crate::simsched::{NullHooks, SimScheduler};
    use crate::task::{AccessMode, TaskAccess};
    use tahoe_hms::{AccessProfile, ObjectId};

    fn chain(n: u32) -> TaskGraph {
        let mut g = TaskGraph::new();
        let c = g.class("step");
        for i in 0..n {
            if i == n / 2 {
                g.mark_window();
            }
            g.add_task(
                c,
                vec![TaskAccess::new(
                    ObjectId(0),
                    AccessMode::ReadWrite,
                    AccessProfile::EMPTY,
                )],
                50.0,
            );
        }
        g
    }

    #[test]
    fn captures_every_task_once() {
        let g = chain(8);
        let mut hooks = TraceHooks::new(NullHooks);
        let stats = SimScheduler::new(2).run(&g, &mut hooks);
        let trace = hooks.into_trace();
        assert_eq!(trace.spans().len(), 8);
        assert_eq!(trace.window_starts().len(), 2);
        assert!((trace.makespan() - stats.makespan_ns).abs() < 1e-9);
    }

    #[test]
    fn spans_are_disjoint_on_a_chain() {
        let g = chain(6);
        let mut hooks = TraceHooks::new(NullHooks);
        SimScheduler::new(4).run(&g, &mut hooks);
        let mut spans = hooks.into_trace().spans.clone();
        spans.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        for w in spans.windows(2) {
            assert!(w[1].start >= w[0].finish - 1e-9, "chain must serialize");
        }
    }

    #[test]
    fn render_has_one_row_per_class_plus_ruler() {
        let g = chain(4);
        let mut hooks = TraceHooks::new(NullHooks);
        SimScheduler::new(1).run(&g, &mut hooks);
        let text = hooks.into_trace().render(40);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // 1 class + windows ruler + time axis
        assert!(lines[0].contains("class0"));
        assert!(lines[1].contains('|'));
        assert!(lines[2].contains("ms"));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = Trace::default();
        assert_eq!(t.render(40), "(empty trace)\n");
        assert_eq!(t.makespan(), 0.0);
    }
}
