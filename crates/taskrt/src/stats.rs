//! Schedule statistics emitted by the simulators.

use tahoe_hms::Ns;

/// Statistics of one scheduler run.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedStats {
    /// Completion time of the last task (virtual ns).
    pub makespan_ns: Ns,
    /// Busy time per worker.
    pub busy_ns: Vec<Ns>,
    /// Total time tasks spent stalled at dispatch (e.g. waiting for a
    /// migration to finish) — the *exposed* data-movement cost.
    pub stall_ns: Ns,
    /// Number of tasks executed.
    pub tasks_executed: u64,
}

impl SchedStats {
    /// Fresh stats for `workers` workers.
    pub fn new(workers: usize) -> Self {
        SchedStats {
            makespan_ns: 0.0,
            busy_ns: vec![0.0; workers],
            stall_ns: 0.0,
            tasks_executed: 0,
        }
    }

    /// Fraction of worker-time spent executing tasks, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.makespan_ns == 0.0 {
            return 0.0;
        }
        let busy: f64 = self.busy_ns.iter().sum();
        busy / (self.makespan_ns * self.busy_ns.len() as f64)
    }

    /// Average worker busy time.
    pub fn mean_busy_ns(&self) -> Ns {
        if self.busy_ns.is_empty() {
            0.0
        } else {
            self.busy_ns.iter().sum::<f64>() / self.busy_ns.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_bounds() {
        let mut s = SchedStats::new(2);
        s.makespan_ns = 100.0;
        s.busy_ns = vec![100.0, 50.0];
        assert!((s.utilization() - 0.75).abs() < 1e-12);
        assert!((s.mean_busy_ns() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn zero_makespan_utilization_is_zero() {
        let s = SchedStats::new(4);
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.mean_busy_ns(), 0.0);
    }
}
