//! Long-lived work-stealing pool executing many task graphs at once.
//!
//! [`crate::wsexec`] spawns scoped threads per run and executes one graph
//! (or one window) to completion — the right shape for a single
//! measured-mode run. A multi-tenant server needs the opposite shape: one
//! set of worker threads that outlives every submission, onto which task
//! graphs from different tenants are dispatched *concurrently*, so one
//! tenant's window barrier never stalls another tenant's ready tasks.
//!
//! [`TaskPool`] is that executor. Each submitted [`JobSpec`] carries its
//! own graph, [`DataGate`], work closure and a caller-chosen `tag`
//! (the tenant id in the server); the pool interleaves ready tasks from
//! all active jobs over the shared Chase–Lev deques. Window barriers are
//! *per job*: the worker that retires a job's last task of window `w`
//! advances that job to `w + 1` (running its `on_window` hook — the
//! server's plan hand-off point) and seeds the next window's roots,
//! while tasks of other jobs keep flowing around it.
//!
//! Dependence counting uses the same release/acquire discipline as
//! `wsexec`: the decrement a finishing task performs on each same-window
//! successor's pending count releases its writes, and the worker that
//! drops the count to zero acquires them.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crossbeam::deque::{Injector, Stealer, Worker};
use crossbeam::utils::Backoff;

use crate::graph::TaskGraph;
use crate::task::{TaskId, TaskSpec};
use crate::wsexec::DataGate;

/// One schedulable unit: a task of a specific job.
type Unit = (Arc<JobState>, TaskId);

/// Work closure: `(worker index, job tag, task)`. The tag is the
/// caller's routing key — the multi-tenant server passes the tenant id,
/// so every executed task knows which tenant it ran for.
pub type PoolWork = dyn Fn(usize, u32, &TaskSpec) + Send + Sync;

/// Per-window hook, called by the advancing worker when the job crosses
/// the barrier *into* the given window (never for window 0 — the caller
/// observes submission itself).
pub type WindowHook = dyn Fn(u32) + Send + Sync;

/// A task graph submission for the pool.
pub struct JobSpec {
    /// Caller's routing key, handed to every `work` call (tenant id).
    pub tag: u32,
    /// The graph to execute, window barriers respected per job.
    pub graph: Arc<TaskGraph>,
    /// Data-readiness gate consulted before every task.
    pub gate: Arc<dyn DataGate + Send + Sync>,
    /// Per-task work closure.
    pub work: Arc<PoolWork>,
    /// Barrier hook: runs on the advancing worker when the job enters
    /// window `w` (1-based in practice), before that window's roots are
    /// published. The server enqueues its migration plan here.
    pub on_window: Option<Box<WindowHook>>,
    /// Completion hook: runs exactly once, on the worker that retires
    /// the job's last task, before `JobHandle::wait` unblocks.
    pub on_done: Option<Box<dyn FnOnce() + Send>>,
}

/// Internal per-job execution state.
struct JobState {
    tag: u32,
    graph: Arc<TaskGraph>,
    gate: Arc<dyn DataGate + Send + Sync>,
    work: Arc<PoolWork>,
    on_window: Option<Box<WindowHook>>,
    on_done: Mutex<Option<Box<dyn FnOnce() + Send>>>,
    /// Pending same-window predecessor counts, indexed by task.
    pending: Vec<AtomicU32>,
    /// Tasks left in the current window.
    remaining: AtomicUsize,
    /// Current window.
    window: AtomicU32,
    /// Summed gate wait, whole ns.
    gate_wait: AtomicU64,
    /// Completion flag + wakeup for `JobHandle::wait`.
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl JobState {
    /// Count `t`'s predecessors inside window `w` (cross-window edges
    /// are satisfied by the per-job barrier).
    fn in_window_preds(&self, t: TaskId, w: u32) -> u32 {
        self.graph
            .preds(t)
            .iter()
            .filter(|p| self.graph.task(**p).window == w)
            .count() as u32
    }
}

/// Handle to one submitted job.
pub struct JobHandle {
    state: Arc<JobState>,
}

impl JobHandle {
    /// Block until the job's last task retired (and its `on_done` hook
    /// returned).
    pub fn wait(&self) {
        let mut done = self.state.done.lock().expect("job done flag");
        while !*done {
            done = self.state.done_cv.wait(done).expect("job done flag");
        }
    }

    /// Whether the job has completed (non-blocking).
    pub fn is_done(&self) -> bool {
        *self.state.done.lock().expect("job done flag")
    }

    /// Total wall-clock ns this job's tasks spent blocked in the gate.
    pub fn gate_wait_ns(&self) -> f64 {
        self.state.gate_wait.load(Ordering::Relaxed) as f64
    }

    /// The job's routing tag.
    pub fn tag(&self) -> u32 {
        self.state.tag
    }
}

/// Aggregate statistics over the pool's lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed across all jobs.
    pub tasks_executed: u64,
    /// Successful steals (injector or peer acquisitions).
    pub steals: u64,
    /// Jobs run to completion.
    pub jobs_completed: u64,
}

/// Shared worker-side state.
struct PoolShared {
    injector: Injector<Unit>,
    stealers: Vec<Stealer<Unit>>,
    shutdown: AtomicBool,
    active_jobs: AtomicUsize,
    tasks_executed: AtomicU64,
    steals: AtomicU64,
    jobs_completed: AtomicU64,
}

/// A long-lived multi-graph work-stealing pool.
///
/// Workers are real OS threads spawned at construction and joined at
/// [`shutdown`](TaskPool::shutdown); submissions interleave freely.
pub struct TaskPool {
    shared: Arc<PoolShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl TaskPool {
    /// A pool with `threads` workers (`0` clamps to 1, like
    /// [`crate::wsexec::WsExecutor::new`]).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let locals: Vec<Worker<Unit>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<Unit>> = locals.iter().map(|w| w.stealer()).collect();
        let shared = Arc::new(PoolShared {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            active_jobs: AtomicUsize::new(0),
            tasks_executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
        });
        let handles = locals
            .into_iter()
            .enumerate()
            .map(|(me, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tahoe-pool-{me}"))
                    .spawn(move || worker_loop(me, local, shared))
                    .expect("spawn pool worker")
            })
            .collect();
        TaskPool {
            shared,
            threads: handles,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads.len()
    }

    /// Jobs submitted but not yet completed.
    pub fn active_jobs(&self) -> usize {
        self.shared.active_jobs.load(Ordering::Acquire)
    }

    /// Submit a job; its window-0 roots become stealable immediately.
    ///
    /// An empty graph completes synchronously (hooks still run).
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        let n = spec.graph.len();
        let state = Arc::new(JobState {
            tag: spec.tag,
            graph: spec.graph,
            gate: spec.gate,
            work: spec.work,
            on_window: spec.on_window,
            on_done: Mutex::new(spec.on_done),
            pending: (0..n).map(|_| AtomicU32::new(0)).collect(),
            remaining: AtomicUsize::new(0),
            window: AtomicU32::new(0),
            gate_wait: AtomicU64::new(0),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        if n == 0 {
            if let Some(cb) = state.on_done.lock().expect("on_done slot").take() {
                cb();
            }
            *state.done.lock().expect("job done flag") = true;
            return JobHandle { state };
        }
        self.shared.active_jobs.fetch_add(1, Ordering::AcqRel);
        // Seed window 0 (skipping leading empty windows, which only a
        // degenerate graph has).
        let mut w = 0u32;
        loop {
            let tasks = state.graph.window_tasks(w);
            if !tasks.is_empty() {
                state.window.store(w, Ordering::Relaxed);
                let mut roots = Vec::new();
                for &t in &tasks {
                    let p = state.in_window_preds(t, w);
                    state.pending[t.index()].store(p, Ordering::Relaxed);
                    if p == 0 {
                        roots.push(t);
                    }
                }
                state.remaining.store(tasks.len(), Ordering::Release);
                for t in roots {
                    self.shared.injector.push((Arc::clone(&state), t));
                }
                break;
            }
            w += 1;
            debug_assert!(w < state.graph.window_count(), "graph has tasks");
        }
        JobHandle {
            state: Arc::clone(&state),
        }
    }

    /// Stop the workers and return lifetime statistics.
    ///
    /// Waits for all active jobs to drain first, so no submitted work is
    /// abandoned.
    pub fn shutdown(self) -> PoolStats {
        let backoff = Backoff::new();
        while self.shared.active_jobs.load(Ordering::Acquire) > 0 {
            if backoff.is_completed() {
                std::thread::sleep(Duration::from_micros(200));
            } else {
                backoff.snooze();
            }
        }
        self.shared.shutdown.store(true, Ordering::Release);
        for h in self.threads {
            let _ = h.join();
        }
        PoolStats {
            tasks_executed: self.shared.tasks_executed.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            jobs_completed: self.shared.jobs_completed.load(Ordering::Relaxed),
        }
    }
}

fn worker_loop(me: usize, local: Worker<Unit>, shared: Arc<PoolShared>) {
    let backoff = Backoff::new();
    loop {
        let unit = local.pop().or_else(|| {
            std::iter::repeat_with(|| {
                shared.injector.steal_batch_and_pop(&local).or_else(|| {
                    shared
                        .stealers
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != me)
                        .map(|(_, s)| s.steal())
                        .collect()
                })
            })
            .find(|s| !s.is_retry())
            .and_then(|s| {
                let got = s.success();
                if got.is_some() {
                    shared.steals.fetch_add(1, Ordering::Relaxed);
                }
                got
            })
        });
        match unit {
            Some((job, tid)) => {
                backoff.reset();
                run_task(me, job, tid, &local, &shared);
            }
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                // Long-lived pool: back off to a real sleep when idle
                // instead of spinning forever.
                if backoff.is_completed() {
                    std::thread::sleep(Duration::from_micros(200));
                } else {
                    backoff.snooze();
                }
            }
        }
    }
}

fn run_task(me: usize, job: Arc<JobState>, tid: TaskId, local: &Worker<Unit>, shared: &PoolShared) {
    let spec = job.graph.task(tid);
    let waited = job.gate.wait_ready(spec);
    if waited > 0.0 {
        job.gate_wait.fetch_add(waited as u64, Ordering::Relaxed);
    }
    (job.work)(me, job.tag, spec);
    shared.tasks_executed.fetch_add(1, Ordering::Relaxed);
    let w = job.window.load(Ordering::Relaxed);
    for &s in job.graph.succs(tid) {
        if job.graph.task(s).window != w {
            // Later-window successor: seeded when its window opens.
            continue;
        }
        // Release our writes; the zero-observer acquires them.
        if job.pending[s.index()].fetch_sub(1, Ordering::AcqRel) == 1 {
            local.push((Arc::clone(&job), s));
        }
    }
    if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        advance(job, shared);
    }
}

/// Cross the job's window barrier: run the `on_window` hook, seed the
/// next non-empty window, or retire the job. Only the worker that
/// retired the window's last task gets here, so the seeding is
/// single-threaded per job.
fn advance(job: Arc<JobState>, shared: &PoolShared) {
    let mut next = job.window.load(Ordering::Relaxed) + 1;
    while next < job.graph.window_count() {
        let tasks = job.graph.window_tasks(next);
        if tasks.is_empty() {
            next += 1;
            continue;
        }
        job.window.store(next, Ordering::Relaxed);
        if let Some(cb) = &job.on_window {
            cb(next);
        }
        let mut roots = Vec::new();
        for &t in &tasks {
            let p = job.in_window_preds(t, next);
            job.pending[t.index()].store(p, Ordering::Relaxed);
            if p == 0 {
                roots.push(t);
            }
        }
        job.remaining.store(tasks.len(), Ordering::Release);
        for t in roots {
            shared.injector.push((Arc::clone(&job), t));
        }
        return;
    }
    // No windows left: the job is complete.
    if let Some(cb) = job.on_done.lock().expect("on_done slot").take() {
        cb();
    }
    shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
    shared.active_jobs.fetch_sub(1, Ordering::AcqRel);
    let mut done = job.done.lock().expect("job done flag");
    *done = true;
    job.done_cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{AccessMode, TaskAccess};
    use crate::wsexec::NoGate;
    use std::sync::atomic::AtomicI64;
    use tahoe_hms::{AccessProfile, ObjectId};

    fn wr(o: u32) -> TaskAccess {
        TaskAccess::new(ObjectId(o), AccessMode::Write, AccessProfile::EMPTY)
    }

    fn rd(o: u32) -> TaskAccess {
        TaskAccess::new(ObjectId(o), AccessMode::Read, AccessProfile::EMPTY)
    }

    fn job(graph: TaskGraph, tag: u32, work: Arc<PoolWork>) -> JobSpec {
        JobSpec {
            tag,
            graph: Arc::new(graph),
            gate: Arc::new(NoGate),
            work,
            on_window: None,
            on_done: None,
        }
    }

    #[test]
    fn two_jobs_interleave_and_both_complete() {
        let pool = TaskPool::new(2);
        let counts: Vec<AtomicU64> = (0..2).map(|_| AtomicU64::new(0)).collect();
        let counts = Arc::new(counts);
        let handles: Vec<JobHandle> = (0..2u32)
            .map(|tag| {
                let mut g = TaskGraph::new();
                let c = g.class("x");
                for i in 0..100 {
                    g.add_task(c, vec![wr(i)], 0.0);
                }
                let counts = Arc::clone(&counts);
                pool.submit(job(
                    g,
                    tag,
                    Arc::new(move |_, t, _| {
                        counts[t as usize].fetch_add(1, Ordering::Relaxed);
                    }),
                ))
            })
            .collect();
        for h in &handles {
            h.wait();
        }
        assert_eq!(counts[0].load(Ordering::Relaxed), 100);
        assert_eq!(counts[1].load(Ordering::Relaxed), 100);
        let stats = pool.shutdown();
        assert_eq!(stats.tasks_executed, 200);
        assert_eq!(stats.jobs_completed, 2);
    }

    #[test]
    fn tag_reaches_every_work_call() {
        let pool = TaskPool::new(2);
        let bad = Arc::new(AtomicU64::new(0));
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for i in 0..50 {
            g.add_task(c, vec![wr(i)], 0.0);
        }
        let bad2 = Arc::clone(&bad);
        let h = pool.submit(job(
            g,
            7,
            Arc::new(move |_, tag, _| {
                if tag != 7 {
                    bad2.fetch_add(1, Ordering::Relaxed);
                }
            }),
        ));
        h.wait();
        assert_eq!(h.tag(), 7);
        assert_eq!(bad.load(Ordering::Relaxed), 0);
        pool.shutdown();
    }

    #[test]
    fn dependence_chain_order_is_respected() {
        let pool = TaskPool::new(4);
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for _ in 0..64 {
            // Read-write on one object: a total chain.
            g.add_task(
                c,
                vec![TaskAccess::new(
                    ObjectId(0),
                    AccessMode::ReadWrite,
                    AccessProfile::EMPTY,
                )],
                0.0,
            );
        }
        let log2 = Arc::clone(&log);
        let h = pool.submit(job(
            g,
            0,
            Arc::new(move |_, _, t| {
                log2.lock().push(t.id.0);
            }),
        ));
        h.wait();
        let expect: Vec<u32> = (0..64).collect();
        assert_eq!(*log.lock(), expect);
        pool.shutdown();
    }

    #[test]
    fn window_barrier_is_per_job_and_on_window_fires() {
        let pool = TaskPool::new(4);
        // Job with 3 windows of 8 tasks; each window reads the previous
        // window's objects.
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for i in 0..8 {
            g.add_task(c, vec![wr(i)], 0.0);
        }
        g.mark_window();
        for i in 0..8 {
            g.add_task(c, vec![rd(i), wr(8 + i)], 0.0);
        }
        g.mark_window();
        for i in 0..8 {
            g.add_task(c, vec![rd(8 + i), wr(16 + i)], 0.0);
        }
        let windows_seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let order_ok = Arc::new(AtomicU64::new(1));
        let max_done_window = Arc::new(AtomicI64::new(-1));
        let ws = Arc::clone(&windows_seen);
        let ok = Arc::clone(&order_ok);
        let mx = Arc::clone(&max_done_window);
        let h = pool.submit(JobSpec {
            tag: 0,
            graph: Arc::new(g),
            gate: Arc::new(NoGate),
            work: Arc::new(move |_, _, t| {
                // A task of window w must never run before every task of
                // window w-1 finished; track the highest fully-started
                // window crudely via the barrier hook order instead.
                let entered = ws.lock().len() as i64;
                if (t.window as i64) > entered {
                    ok.store(0, Ordering::Relaxed);
                }
                mx.fetch_max(t.window as i64, Ordering::Relaxed);
            }),
            on_window: Some(Box::new(move |w| {
                windows_seen.lock().push(w);
            })),
            on_done: None,
        });
        h.wait();
        assert_eq!(order_ok.load(Ordering::Relaxed), 1, "barrier violated");
        assert_eq!(max_done_window.load(Ordering::Relaxed), 2);
        pool.shutdown();
    }

    #[test]
    fn on_done_runs_before_wait_returns() {
        let pool = TaskPool::new(2);
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for i in 0..10 {
            g.add_task(c, vec![wr(i)], 0.0);
        }
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        let h = pool.submit(JobSpec {
            tag: 0,
            graph: Arc::new(g),
            gate: Arc::new(NoGate),
            work: Arc::new(|_, _, _| {}),
            on_window: None,
            on_done: Some(Box::new(move || {
                f2.store(1, Ordering::Release);
            })),
        });
        h.wait();
        assert_eq!(flag.load(Ordering::Acquire), 1);
        assert!(h.is_done());
        pool.shutdown();
    }

    #[test]
    fn empty_graph_completes_synchronously() {
        let pool = TaskPool::new(1);
        let h = pool.submit(job(TaskGraph::new(), 0, Arc::new(|_, _, _| {})));
        assert!(h.is_done());
        h.wait();
        let stats = pool.shutdown();
        assert_eq!(stats.tasks_executed, 0);
    }

    #[test]
    fn gate_waits_are_summed_per_job() {
        struct FixedGate;
        impl DataGate for FixedGate {
            fn wait_ready(&self, _t: &TaskSpec) -> f64 {
                3.0
            }
        }
        let pool = TaskPool::new(2);
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for i in 0..20 {
            g.add_task(c, vec![wr(i)], 0.0);
        }
        let h = pool.submit(JobSpec {
            tag: 0,
            graph: Arc::new(g),
            gate: Arc::new(FixedGate),
            work: Arc::new(|_, _, _| {}),
            on_window: None,
            on_done: None,
        });
        h.wait();
        assert_eq!(h.gate_wait_ns(), 60.0);
        pool.shutdown();
    }

    #[test]
    fn many_jobs_from_many_submitter_threads() {
        let pool = Arc::new(TaskPool::new(4));
        let total = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for tag in 0..8u32 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                scope.spawn(move || {
                    for _ in 0..4 {
                        let mut g = TaskGraph::new();
                        let c = g.class("x");
                        for i in 0..25 {
                            g.add_task(c, vec![wr(i)], 0.0);
                        }
                        let total = Arc::clone(&total);
                        let h = pool.submit(JobSpec {
                            tag,
                            graph: Arc::new(g),
                            gate: Arc::new(NoGate),
                            work: Arc::new(move |_, _, _| {
                                total.fetch_add(1, Ordering::Relaxed);
                            }),
                            on_window: None,
                            on_done: None,
                        });
                        h.wait();
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 4 * 25);
        let stats = Arc::try_unwrap(pool).ok().expect("sole owner").shutdown();
        assert_eq!(stats.jobs_completed, 32);
    }
}
