//! Task-parallel runtime substrate for the Tahoe reproduction.
//!
//! The SC 2018 paper targets *task-parallel programs*: computation is
//! decomposed into tasks that declare which data objects they read and
//! write (OmpSs/StarPU/OpenMP-`depend` style), the runtime derives the
//! task DAG from those declarations, and a pool of workers executes ready
//! tasks. The paper's data-management runtime is a layer *inside* such a
//! host runtime — it needs task classes, declared accesses and visibility
//! into the ready queue (look-ahead) to plan placements and prefetch data.
//! No off-the-shelf host runtime exposes those hooks, so this crate builds
//! one:
//!
//! * [`task`] / [`graph`] — data-annotated tasks, task classes, and a task
//!   graph that derives RAW/WAR/WAW dependences from declared accesses
//!   ([`deps`]).
//! * [`simsched`] — a deterministic event-driven multi-worker scheduler
//!   over virtual time. Task durations are supplied by a
//!   [`simsched::SchedulerHooks`] implementation (the Tahoe policy layer),
//!   so placement decisions feed straight back into the schedule.
//! * [`wsexec`] — a real work-stealing executor (crossbeam deques, real
//!   threads) used by the examples and tests to demonstrate that the same
//!   task graphs execute correctly under genuine parallelism.
//! * [`pool`] — a long-lived multi-graph work-stealing pool: one set of
//!   worker threads executing many tagged task graphs concurrently with
//!   per-job window barriers (the multi-tenant server's executor).
//! * [`lookahead`] — deterministic extraction of the "soon-to-run" task
//!   window the proactive migration planner consumes.
//! * [`obs`] — a [`simsched::SchedulerHooks`] decorator that emits the
//!   structured event stream (task start/finish, window boundaries,
//!   dispatch stalls) through `tahoe-obs`.

// Pure graph/scheduling logic: nothing here touches raw memory, so the
// whole crate stays safe by construction.
#![forbid(unsafe_code)]

pub mod deps;
pub mod graph;
pub mod lookahead;
pub mod obs;
pub mod pool;
pub mod simsched;
pub mod stats;
pub mod task;
pub mod trace;
pub mod wsexec;

pub use graph::TaskGraph;
pub use obs::ObsHooks;
pub use pool::{JobHandle, JobSpec, PoolStats, TaskPool};
pub use simsched::{NullHooks, SchedulerHooks, SimScheduler};
pub use stats::SchedStats;
pub use task::{AccessMode, TaskAccess, TaskClassId, TaskId, TaskSpec};
pub use trace::{Trace, TraceHooks};
pub use wsexec::{DataGate, NoGate, WsExecutor, WsStats};
