//! Observability decorator for the virtual-time scheduler: emits
//! task-start/finish, window-start and dispatch-stall events through a
//! [`tahoe_obs::Emitter`] while delegating every scheduling decision to
//! the wrapped [`SchedulerHooks`].
//!
//! Stacks with [`crate::trace::TraceHooks`] in either order; the runtime
//! layer composes `ObsHooks<TraceHooks<Driver>>` for observed runs. With a
//! disabled emitter the decorator is a forwarding shell — each hook costs
//! one branch, so observed and plain code paths share one implementation.

use tahoe_hms::Ns;
use tahoe_obs::{Emitter, Event};

use crate::simsched::SchedulerHooks;
use crate::task::{TaskId, TaskSpec};

/// A [`SchedulerHooks`] decorator that emits scheduler events.
#[derive(Debug)]
pub struct ObsHooks<H> {
    inner: H,
    emitter: Emitter,
}

impl<H> ObsHooks<H> {
    /// Wrap `inner`, emitting through `emitter`.
    pub fn new(inner: H, emitter: Emitter) -> Self {
        ObsHooks { inner, emitter }
    }

    /// Access the inner hooks.
    pub fn inner(&self) -> &H {
        &self.inner
    }

    /// Unwrap the inner hooks.
    pub fn into_inner(self) -> H {
        self.inner
    }
}

impl<H: SchedulerHooks> SchedulerHooks for ObsHooks<H> {
    fn task_duration_ns(&mut self, task: &TaskSpec, start: Ns) -> Ns {
        self.inner.task_duration_ns(task, start)
    }

    fn task_earliest_start(&mut self, task: &TaskSpec, now: Ns) -> Ns {
        let earliest = self.inner.task_earliest_start(task, now);
        // The scheduler accounts `start - avail` as the stall; `earliest`
        // below `now` is clamped there, so only a positive delta stalls.
        if earliest > now {
            self.emitter.emit(|| Event::DispatchStall {
                t: now,
                task: task.id.0,
                stall_ns: earliest - now,
            });
        }
        earliest
    }

    fn on_dispatch_round(&mut self, ready: &[TaskId], now: Ns) {
        self.inner.on_dispatch_round(ready, now);
    }

    fn on_task_start(&mut self, task: &TaskSpec, start: Ns) {
        self.emitter.emit(|| Event::TaskStart {
            t: start,
            task: task.id.0,
            class: task.class.0,
            window: task.window,
        });
        self.inner.on_task_start(task, start);
    }

    fn on_task_finish(&mut self, task: &TaskSpec, finish: Ns) {
        self.emitter.emit(|| Event::TaskFinish {
            t: finish,
            task: task.id.0,
            class: task.class.0,
            window: task.window,
        });
        self.inner.on_task_finish(task, finish);
    }

    fn on_window_start(&mut self, window: u32, now: Ns) {
        self.emitter.emit(|| Event::WindowStart { t: now, window });
        self.inner.on_window_start(window, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;
    use crate::simsched::{NullHooks, SimScheduler};
    use crate::task::{AccessMode, TaskAccess};
    use tahoe_hms::{AccessProfile, ObjectId};

    fn inout(o: u32) -> TaskAccess {
        TaskAccess::new(ObjectId(o), AccessMode::ReadWrite, AccessProfile::EMPTY)
    }

    #[test]
    fn emits_start_finish_and_window_events() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        g.add_task(c, vec![inout(0)], 10.0);
        g.mark_window();
        g.add_task(c, vec![inout(0)], 10.0);

        let (emitter, buf) = Emitter::buffered();
        let mut hooks = ObsHooks::new(NullHooks, emitter);
        let stats = SimScheduler::new(2).run(&g, &mut hooks);
        let events = buf.drain();

        let starts = events
            .iter()
            .filter(|e| matches!(e, Event::TaskStart { .. }))
            .count();
        let finishes = events
            .iter()
            .filter(|e| matches!(e, Event::TaskFinish { .. }))
            .count();
        let windows = events
            .iter()
            .filter(|e| matches!(e, Event::WindowStart { .. }))
            .count();
        assert_eq!(starts, 2);
        assert_eq!(finishes, 2);
        assert_eq!(windows, 2);
        let last_finish = events
            .iter()
            .rev()
            .find_map(|e| match e {
                Event::TaskFinish { t, .. } => Some(*t),
                _ => None,
            })
            .unwrap();
        assert!((last_finish - stats.makespan_ns).abs() < 1e-9);
    }

    /// Hooks that stall every task by a fixed amount.
    struct Stall(f64);
    impl SchedulerHooks for Stall {
        fn task_duration_ns(&mut self, task: &TaskSpec, _s: Ns) -> Ns {
            task.compute_ns
        }
        fn task_earliest_start(&mut self, _task: &TaskSpec, now: Ns) -> Ns {
            now + self.0
        }
    }

    #[test]
    fn emits_dispatch_stalls_with_magnitude() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        g.add_task(c, vec![inout(0)], 10.0);
        let (emitter, buf) = Emitter::buffered();
        let mut hooks = ObsHooks::new(Stall(250.0), emitter);
        SimScheduler::new(1).run(&g, &mut hooks);
        let stall = buf
            .drain()
            .into_iter()
            .find_map(|e| match e {
                Event::DispatchStall { stall_ns, .. } => Some(stall_ns),
                _ => None,
            })
            .expect("stall event");
        assert!((stall - 250.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_emitter_changes_nothing() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for _ in 0..8 {
            g.add_task(c, vec![inout(0)], 5.0);
        }
        let plain = SimScheduler::new(2).run(&g, &mut NullHooks);
        let mut wrapped = ObsHooks::new(NullHooks, Emitter::disabled());
        let observed = SimScheduler::new(2).run(&g, &mut wrapped);
        assert_eq!(plain.makespan_ns, observed.makespan_ns);
        assert_eq!(plain.stall_ns, observed.stall_ns);
    }
}
