//! Task identities, classes, and data-access declarations.

use std::fmt;

use tahoe_hms::{AccessProfile, Ns, ObjectId};

/// Identifier of a task instance (dense, in submission order).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Index form for dense tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// Identifier of a *task class*: tasks created from the same task function
/// with the same access structure.
///
/// The paper profiles a handful of instances per class and reuses the
/// profile for every other instance — task-parallel programs create far
/// too many task instances to profile each one.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskClassId(pub u32);

impl TaskClassId {
    /// Index form for dense tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TaskClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// How a task uses a data object, in OmpSs/OpenMP-`depend` terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// `in` — the task only reads the object.
    Read,
    /// `out` — the task overwrites the object without reading it.
    Write,
    /// `inout` — the task reads and writes the object.
    ReadWrite,
}

impl AccessMode {
    /// Whether this access reads the object (RAW source).
    #[inline]
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::ReadWrite)
    }

    /// Whether this access writes the object (WAR/WAW source).
    #[inline]
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::ReadWrite)
    }
}

/// One declared access of a task to a data object, together with the
/// ground-truth main-memory traffic the access generates.
///
/// The `profile` is the *actual* behaviour of the task (what hardware
/// would do); the profiler in `tahoe-memprof` only ever sees a sampled,
/// noisy view of it, exactly as performance counters only see a sampled
/// view of real traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskAccess {
    /// The object touched.
    pub object: ObjectId,
    /// Declared direction (drives dependence derivation).
    pub mode: AccessMode,
    /// Ground-truth main-memory traffic of this task to this object.
    pub profile: AccessProfile,
}

impl TaskAccess {
    /// Convenience constructor.
    pub fn new(object: ObjectId, mode: AccessMode, profile: AccessProfile) -> Self {
        TaskAccess {
            object,
            mode,
            profile,
        }
    }

    /// A read access with a streaming profile of `loads` line loads.
    pub fn read_stream(object: ObjectId, loads: u64) -> Self {
        Self::new(object, AccessMode::Read, AccessProfile::streaming(loads, 0))
    }

    /// A write access with a streaming profile of `stores` line stores.
    pub fn write_stream(object: ObjectId, stores: u64) -> Self {
        Self::new(
            object,
            AccessMode::Write,
            AccessProfile::streaming(0, stores),
        )
    }
}

/// A task instance: class, declared accesses, and pure-compute time.
///
/// `compute_ns` is the time the task spends off main memory (arithmetic
/// and cache-resident work); the memory component of the task's duration
/// is derived at schedule time from the access profiles and the current
/// placement of each object.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Instance id, assigned by the graph in submission order.
    pub id: TaskId,
    /// Task class (shared profile identity).
    pub class: TaskClassId,
    /// Declared data accesses.
    pub accesses: Vec<TaskAccess>,
    /// Pure compute time in virtual ns.
    pub compute_ns: Ns,
    /// Execution window (iteration) this task belongs to.
    pub window: u32,
}

impl TaskSpec {
    /// All objects the task touches, in declaration order (deduplicated).
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut seen = Vec::new();
        for a in &self.accesses {
            if !seen.contains(&a.object) {
                seen.push(a.object);
            }
        }
        seen
    }

    /// The access declared for `object`, if any (first match).
    pub fn access_to(&self, object: ObjectId) -> Option<&TaskAccess> {
        self.accesses.iter().find(|a| a.object == object)
    }

    /// Total ground-truth main-memory accesses of this task.
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().map(|a| a.profile.accesses()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_mode_predicates() {
        assert!(AccessMode::Read.reads() && !AccessMode::Read.writes());
        assert!(!AccessMode::Write.reads() && AccessMode::Write.writes());
        assert!(AccessMode::ReadWrite.reads() && AccessMode::ReadWrite.writes());
    }

    #[test]
    fn objects_deduplicates_preserving_order() {
        let o1 = ObjectId(1);
        let o2 = ObjectId(2);
        let t = TaskSpec {
            id: TaskId(0),
            class: TaskClassId(0),
            accesses: vec![
                TaskAccess::read_stream(o2, 10),
                TaskAccess::write_stream(o1, 5),
                TaskAccess::read_stream(o2, 3),
            ],
            compute_ns: 0.0,
            window: 0,
        };
        assert_eq!(t.objects(), vec![o2, o1]);
        assert_eq!(t.total_accesses(), 18);
        assert_eq!(t.access_to(o1).unwrap().mode, AccessMode::Write);
        assert!(t.access_to(ObjectId(9)).is_none());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", TaskId(3)), "task#3");
        assert_eq!(format!("{:?}", TaskClassId(1)), "class#1");
    }
}
