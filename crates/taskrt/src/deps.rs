//! Dependence derivation from declared data accesses.
//!
//! Task-parallel models with data annotations (OmpSs, StarPU, OpenMP
//! `depend`) derive the task DAG from the program-order sequence of
//! declared accesses per object:
//!
//! * **RAW** — a reader depends on the last writer of the object;
//! * **WAW** — a writer depends on the last writer;
//! * **WAR** — a writer depends on every reader since the last write.
//!
//! [`DepTracker`] implements exactly that bookkeeping. Because every edge
//! points from an earlier-submitted task to a later one, graphs built this
//! way are acyclic by construction — a property the graph tests and
//! property tests verify.

use std::collections::HashMap;

use tahoe_hms::ObjectId;

use crate::task::{AccessMode, TaskId};

/// Per-object reader/writer state for deriving dependences in program
/// order.
#[derive(Debug, Default)]
pub struct DepTracker {
    last_writer: HashMap<ObjectId, TaskId>,
    readers_since_write: HashMap<ObjectId, Vec<TaskId>>,
}

impl DepTracker {
    /// Fresh tracker (no accesses seen).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record task `t` accessing `object` with `mode`; returns the tasks
    /// `t` must wait for on account of this access (deduplicated,
    /// ascending, never containing `t` itself).
    pub fn record(&mut self, t: TaskId, object: ObjectId, mode: AccessMode) -> Vec<TaskId> {
        let mut deps = Vec::new();
        if mode.reads() {
            if let Some(&w) = self.last_writer.get(&object) {
                if w != t {
                    deps.push(w);
                }
            }
        }
        if mode.writes() {
            // WAW on the last writer.
            if let Some(&w) = self.last_writer.get(&object) {
                if w != t {
                    deps.push(w);
                }
            }
            // WAR on every reader since that write.
            if let Some(readers) = self.readers_since_write.get(&object) {
                for &r in readers {
                    if r != t {
                        deps.push(r);
                    }
                }
            }
            self.last_writer.insert(object, t);
            self.readers_since_write.insert(object, Vec::new());
        }
        if mode.reads() {
            // Register as reader *after* write handling so an inout task
            // does not WAR-depend on itself via its own read.
            self.readers_since_write.entry(object).or_default().push(t);
        }
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    /// The current last writer of `object`, if any.
    pub fn last_writer(&self, object: ObjectId) -> Option<TaskId> {
        self.last_writer.get(&object).copied()
    }

    /// The readers of `object` since its last write.
    pub fn readers(&self, object: ObjectId) -> &[TaskId] {
        self.readers_since_write
            .get(&object)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const O: ObjectId = ObjectId(0);
    const P: ObjectId = ObjectId(1);

    #[test]
    fn raw_dependence() {
        let mut d = DepTracker::new();
        assert!(d.record(TaskId(0), O, AccessMode::Write).is_empty());
        assert_eq!(d.record(TaskId(1), O, AccessMode::Read), vec![TaskId(0)]);
        assert_eq!(d.record(TaskId(2), O, AccessMode::Read), vec![TaskId(0)]);
    }

    #[test]
    fn war_dependence_on_all_readers() {
        let mut d = DepTracker::new();
        d.record(TaskId(0), O, AccessMode::Write);
        d.record(TaskId(1), O, AccessMode::Read);
        d.record(TaskId(2), O, AccessMode::Read);
        let deps = d.record(TaskId(3), O, AccessMode::Write);
        // WAW on 0 plus WAR on 1 and 2.
        assert_eq!(deps, vec![TaskId(0), TaskId(1), TaskId(2)]);
    }

    #[test]
    fn waw_dependence() {
        let mut d = DepTracker::new();
        d.record(TaskId(0), O, AccessMode::Write);
        assert_eq!(d.record(TaskId(1), O, AccessMode::Write), vec![TaskId(0)]);
        assert_eq!(d.last_writer(O), Some(TaskId(1)));
    }

    #[test]
    fn write_clears_reader_set() {
        let mut d = DepTracker::new();
        d.record(TaskId(0), O, AccessMode::Write);
        d.record(TaskId(1), O, AccessMode::Read);
        d.record(TaskId(2), O, AccessMode::Write);
        // Task 3 writing should only see task 2, not reader 1.
        assert_eq!(d.record(TaskId(3), O, AccessMode::Write), vec![TaskId(2)]);
    }

    #[test]
    fn inout_chains_like_write_and_read() {
        let mut d = DepTracker::new();
        d.record(TaskId(0), O, AccessMode::ReadWrite);
        let deps = d.record(TaskId(1), O, AccessMode::ReadWrite);
        assert_eq!(deps, vec![TaskId(0)]);
        let deps = d.record(TaskId(2), O, AccessMode::ReadWrite);
        assert_eq!(
            deps,
            vec![TaskId(1)],
            "inout must not dep on itself or stale readers"
        );
    }

    #[test]
    fn independent_objects_do_not_interfere() {
        let mut d = DepTracker::new();
        d.record(TaskId(0), O, AccessMode::Write);
        assert!(d.record(TaskId(1), P, AccessMode::Write).is_empty());
        assert_eq!(d.record(TaskId(2), O, AccessMode::Read), vec![TaskId(0)]);
        assert_eq!(d.record(TaskId(3), P, AccessMode::Read), vec![TaskId(1)]);
    }

    #[test]
    fn readers_accessor_tracks_since_last_write() {
        let mut d = DepTracker::new();
        d.record(TaskId(0), O, AccessMode::Write);
        d.record(TaskId(1), O, AccessMode::Read);
        assert_eq!(d.readers(O), &[TaskId(1)]);
        d.record(TaskId(2), O, AccessMode::Write);
        assert!(d.readers(O).is_empty());
        assert_eq!(d.readers(P), &[] as &[TaskId]);
    }

    #[test]
    fn read_before_any_write_has_no_deps() {
        let mut d = DepTracker::new();
        assert!(d.record(TaskId(0), O, AccessMode::Read).is_empty());
        // But a later writer WAR-depends on that initial reader.
        assert_eq!(d.record(TaskId(1), O, AccessMode::Write), vec![TaskId(0)]);
    }
}
