//! The task graph: tasks, derived dependences, classes and windows.

use std::collections::HashMap;

use tahoe_hms::{Ns, ObjectId};

use crate::deps::DepTracker;
use crate::task::{TaskAccess, TaskClassId, TaskId, TaskSpec};

/// A data-flow task graph under construction and execution.
///
/// Tasks are submitted in program order; dependences are derived from the
/// declared accesses (see [`crate::deps`]). The graph also tracks
/// *windows* — iteration boundaries of the application's outer loop. The
/// paper's runtime plans placement per window: profiling runs during the
/// first windows and the chosen plan is enforced at later window starts.
#[derive(Debug, Default)]
pub struct TaskGraph {
    tasks: Vec<TaskSpec>,
    succs: Vec<Vec<TaskId>>,
    preds: Vec<Vec<TaskId>>,
    class_names: Vec<String>,
    class_by_name: HashMap<String, TaskClassId>,
    tracker: DepTracker,
    current_window: u32,
}

impl TaskGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a task class by name (same name → same class id).
    pub fn class(&mut self, name: &str) -> TaskClassId {
        if let Some(&id) = self.class_by_name.get(name) {
            return id;
        }
        let id = TaskClassId(self.class_names.len() as u32);
        self.class_names.push(name.to_string());
        self.class_by_name.insert(name.to_string(), id);
        id
    }

    /// Name of a class.
    pub fn class_name(&self, id: TaskClassId) -> &str {
        &self.class_names[id.index()]
    }

    /// Number of interned classes.
    pub fn class_count(&self) -> usize {
        self.class_names.len()
    }

    /// Submit a task; dependences on earlier tasks are derived from
    /// `accesses`. Returns the new task's id.
    pub fn add_task(
        &mut self,
        class: TaskClassId,
        accesses: Vec<TaskAccess>,
        compute_ns: Ns,
    ) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        let mut deps: Vec<TaskId> = Vec::new();
        for a in &accesses {
            deps.extend(self.tracker.record(id, a.object, a.mode));
        }
        deps.sort_unstable();
        deps.dedup();
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        for &d in &deps {
            self.succs[d.index()].push(id);
            self.preds[id.index()].push(d);
        }
        self.tasks.push(TaskSpec {
            id,
            class,
            accesses,
            compute_ns,
            window: self.current_window,
        });
        id
    }

    /// Add an explicit extra dependence `from → to` (e.g. a barrier).
    ///
    /// Only backward edges are accepted (`from` submitted before `to`),
    /// which preserves acyclicity by construction.
    pub fn add_dep(&mut self, from: TaskId, to: TaskId) {
        assert!(
            from < to,
            "explicit dependences must point forward in submission order"
        );
        if !self.preds[to.index()].contains(&from) {
            self.succs[from.index()].push(to);
            self.preds[to.index()].push(from);
        }
    }

    /// Close the current window; subsequently submitted tasks belong to
    /// the next one.
    pub fn mark_window(&mut self) {
        self.current_window += 1;
    }

    /// Number of windows present (at least 1 once a task exists).
    pub fn window_count(&self) -> u32 {
        if self.tasks.is_empty() {
            0
        } else {
            self.current_window + 1
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with id `t`.
    pub fn task(&self, t: TaskId) -> &TaskSpec {
        &self.tasks[t.index()]
    }

    /// All tasks in submission order.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Successor tasks of `t`.
    pub fn succs(&self, t: TaskId) -> &[TaskId] {
        &self.succs[t.index()]
    }

    /// Predecessor tasks of `t`.
    pub fn preds(&self, t: TaskId) -> &[TaskId] {
        &self.preds[t.index()]
    }

    /// Tasks with no predecessors (initially ready).
    pub fn roots(&self) -> Vec<TaskId> {
        self.tasks
            .iter()
            .filter(|t| self.preds[t.id.index()].is_empty())
            .map(|t| t.id)
            .collect()
    }

    /// Tasks belonging to window `w`, in submission order.
    pub fn window_tasks(&self, w: u32) -> Vec<TaskId> {
        self.tasks
            .iter()
            .filter(|t| t.window == w)
            .map(|t| t.id)
            .collect()
    }

    /// Every distinct object referenced by any task.
    pub fn referenced_objects(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = Vec::new();
        for t in &self.tasks {
            for a in &t.accesses {
                if !v.contains(&a.object) {
                    v.push(a.object);
                }
            }
        }
        v.sort();
        v
    }

    /// Verify the graph is a DAG (edges must point forward). Returns the
    /// offending edge if not.
    pub fn verify_acyclic(&self) -> Result<(), (TaskId, TaskId)> {
        for (i, succs) in self.succs.iter().enumerate() {
            for &s in succs {
                if s.index() <= i {
                    return Err((TaskId(i as u32), s));
                }
            }
        }
        Ok(())
    }

    /// Critical-path length under a per-task duration function, in ns.
    ///
    /// This is the makespan lower bound with unlimited workers; the
    /// scheduler's makespan can be checked against it.
    pub fn critical_path_ns<F>(&self, mut duration: F) -> Ns
    where
        F: FnMut(&TaskSpec) -> Ns,
    {
        let mut finish = vec![0.0f64; self.tasks.len()];
        let mut best: Ns = 0.0;
        for t in &self.tasks {
            let start = self.preds[t.id.index()]
                .iter()
                .map(|p| finish[p.index()])
                .fold(0.0f64, f64::max);
            let f = start + duration(t);
            finish[t.id.index()] = f;
            best = best.max(f);
        }
        best
    }

    /// Sum of all task durations (sequential-execution time).
    pub fn total_work_ns<F>(&self, duration: F) -> Ns
    where
        F: FnMut(&TaskSpec) -> Ns,
    {
        self.tasks.iter().map(duration).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::AccessMode;
    use tahoe_hms::AccessProfile;

    fn acc(o: u32, mode: AccessMode) -> TaskAccess {
        TaskAccess::new(ObjectId(o), mode, AccessProfile::streaming(10, 5))
    }

    #[test]
    fn chain_from_inout_accesses() {
        let mut g = TaskGraph::new();
        let c = g.class("step");
        let t0 = g.add_task(c, vec![acc(0, AccessMode::ReadWrite)], 1.0);
        let t1 = g.add_task(c, vec![acc(0, AccessMode::ReadWrite)], 1.0);
        let t2 = g.add_task(c, vec![acc(0, AccessMode::ReadWrite)], 1.0);
        assert_eq!(g.preds(t1), &[t0]);
        assert_eq!(g.preds(t2), &[t1]);
        assert_eq!(g.succs(t0), &[t1]);
        assert_eq!(g.roots(), vec![t0]);
        g.verify_acyclic().unwrap();
    }

    #[test]
    fn fork_join_shape() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        let w = g.add_task(c, vec![acc(0, AccessMode::Write)], 1.0);
        let r1 = g.add_task(c, vec![acc(0, AccessMode::Read)], 1.0);
        let r2 = g.add_task(c, vec![acc(0, AccessMode::Read)], 1.0);
        let j = g.add_task(c, vec![acc(0, AccessMode::Write)], 1.0);
        assert_eq!(g.succs(w), &[r1, r2, j][..3].to_vec());
        assert_eq!(g.preds(j), &[w, r1, r2]);
        // The two readers are mutually independent.
        assert!(!g.preds(r2).contains(&r1));
        g.verify_acyclic().unwrap();
    }

    #[test]
    fn class_interning_is_stable() {
        let mut g = TaskGraph::new();
        let a = g.class("gemm");
        let b = g.class("trsm");
        let a2 = g.class("gemm");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(g.class_name(a), "gemm");
        assert_eq!(g.class_count(), 2);
    }

    #[test]
    fn windows_partition_tasks() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        let t0 = g.add_task(c, vec![acc(0, AccessMode::ReadWrite)], 1.0);
        g.mark_window();
        let t1 = g.add_task(c, vec![acc(0, AccessMode::ReadWrite)], 1.0);
        let t2 = g.add_task(c, vec![acc(1, AccessMode::Write)], 1.0);
        assert_eq!(g.window_count(), 2);
        assert_eq!(g.window_tasks(0), vec![t0]);
        assert_eq!(g.window_tasks(1), vec![t1, t2]);
        assert_eq!(g.task(t1).window, 1);
    }

    #[test]
    fn explicit_dep_dedups_and_orders() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        let t0 = g.add_task(c, vec![acc(0, AccessMode::Write)], 1.0);
        let t1 = g.add_task(c, vec![acc(1, AccessMode::Write)], 1.0);
        g.add_dep(t0, t1);
        g.add_dep(t0, t1); // duplicate ignored
        assert_eq!(g.preds(t1), &[t0]);
        g.verify_acyclic().unwrap();
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn backward_explicit_dep_panics() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        let t0 = g.add_task(c, vec![acc(0, AccessMode::Write)], 1.0);
        let t1 = g.add_task(c, vec![acc(1, AccessMode::Write)], 1.0);
        g.add_dep(t1, t0);
    }

    #[test]
    fn critical_path_of_chain_is_total_work() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for _ in 0..5 {
            g.add_task(c, vec![acc(0, AccessMode::ReadWrite)], 10.0);
        }
        let cp = g.critical_path_ns(|t| t.compute_ns);
        assert!((cp - 50.0).abs() < 1e-9);
        assert!((g.total_work_ns(|t| t.compute_ns) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_of_fan_is_one_task() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        for i in 0..8 {
            g.add_task(c, vec![acc(i, AccessMode::Write)], 10.0);
        }
        assert!((g.critical_path_ns(|t| t.compute_ns) - 10.0).abs() < 1e-9);
        assert!((g.total_work_ns(|t| t.compute_ns) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn referenced_objects_sorted_unique() {
        let mut g = TaskGraph::new();
        let c = g.class("x");
        g.add_task(
            c,
            vec![acc(3, AccessMode::Write), acc(1, AccessMode::Read)],
            1.0,
        );
        g.add_task(c, vec![acc(1, AccessMode::Read)], 1.0);
        assert_eq!(g.referenced_objects(), vec![ObjectId(1), ObjectId(3)]);
    }

    #[test]
    fn empty_graph_properties() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.window_count(), 0);
        assert_eq!(g.critical_path_ns(|t| t.compute_ns), 0.0);
        g.verify_acyclic().unwrap();
    }
}
