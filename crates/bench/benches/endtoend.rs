//! End-to-end benchmarks: full policy runs on test-scale workloads (wall
//! time of the simulator itself, not virtual time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tahoe_core::prelude::*;
use tahoe_workloads::{all_workloads, Scale};

fn bench_endtoend(c: &mut Criterion) {
    let mut g = c.benchmark_group("endtoend");
    g.sample_size(10);
    for app in all_workloads(Scale::Test) {
        let rt = Runtime::new(
            Platform::emulated_bw(0.5, (app.footprint() / 4).max(1 << 20), 4 * app.footprint())
                .unwrap(),
            RuntimeConfig::default(),
        );
        g.bench_with_input(BenchmarkId::new("tahoe", &app.name), &app, |b, app| {
            b.iter(|| rt.run(std::hint::black_box(app), &PolicyKind::tahoe()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_endtoend);
criterion_main!(benches);
