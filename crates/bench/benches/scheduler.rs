//! Scheduler microbenchmarks: dependence derivation and virtual-time
//! dispatch throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tahoe_taskrt::{NullHooks, SimScheduler};
use tahoe_workloads::{cholesky, gemm, Scale};

fn bench_graph_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph-build");
    g.bench_function("cholesky-bench-scale", |b| {
        b.iter(|| cholesky::app(std::hint::black_box(Scale::Bench)))
    });
    g.bench_function("gemm-bench-scale", |b| {
        b.iter(|| gemm::app(std::hint::black_box(Scale::Bench)))
    });
    g.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    let app = cholesky::app(Scale::Bench);
    let mut g = c.benchmark_group("sim-dispatch");
    for workers in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::new("cholesky", workers), &workers, |b, &w| {
            let sched = SimScheduler::new(w);
            b.iter(|| sched.run(std::hint::black_box(&app.graph), &mut NullHooks))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_graph_build, bench_dispatch
}
criterion_main!(benches);
