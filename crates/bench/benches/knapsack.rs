//! Knapsack-solver microbenchmarks: the per-plan decision cost the paper
//! bounds with its O((log n)^2) empirical-complexity claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tahoe_hms::ObjectId;
use tahoe_placement::{knapsack, Item};

fn items(n: u32, seed: u64) -> Vec<Item> {
    // Deterministic pseudo-random sizes/values (xorshift).
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|i| Item {
            id: ObjectId(i),
            size: (next() % (8 << 20)) + 4096,
            value: (next() % 1_000_000) as f64,
        })
        .collect()
}

fn bench_knapsack(c: &mut Criterion) {
    let mut g = c.benchmark_group("knapsack");
    for n in [16u32, 64, 256, 1024] {
        let its = items(n, 0xfeed);
        let cap: u64 = its.iter().map(|i| i.size).sum::<u64>() / 3;
        g.bench_with_input(BenchmarkId::new("exact", n), &its, |b, its| {
            b.iter(|| knapsack::solve_exact(std::hint::black_box(its), cap))
        });
        g.bench_with_input(BenchmarkId::new("greedy", n), &its, |b, its| {
            b.iter(|| knapsack::solve_greedy(std::hint::black_box(its), cap))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_knapsack
}
criterion_main!(benches);
