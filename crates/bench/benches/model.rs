//! Performance-model microbenchmarks: the per-candidate evaluation cost
//! charged by the planner.

use criterion::{criterion_group, criterion_main, Criterion};
use tahoe_hms::presets;
use tahoe_memprof::Calibration;
use tahoe_perfmodel::{dram_benefit_ns, predicted_mem_time_ns, Demand, ModelParams};

fn bench_model(c: &mut Criterion) {
    let dram = presets::dram(1 << 28);
    let nvm = presets::optane_pmm(1 << 34);
    let calib = Calibration::identity(2.3, 9.5);
    let params = ModelParams::default();
    let d = Demand {
        loads: 1.3e6,
        stores: 0.7e6,
        active_ns: 4.2e7,
        concurrency: 9.0,
    };
    c.bench_function("dram_benefit", |b| {
        b.iter(|| dram_benefit_ns(std::hint::black_box(&d), &nvm, &dram, &calib, &params))
    });
    c.bench_function("predicted_mem_time", |b| {
        b.iter(|| predicted_mem_time_ns(std::hint::black_box(&d), &nvm, &calib, &params))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_model
}
criterion_main!(benches);
