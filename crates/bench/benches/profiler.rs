//! Sampling-profiler microbenchmarks: per-observation cost (what the
//! paper's "pure runtime cost" pays during profiling windows).

use criterion::{criterion_group, criterion_main, Criterion};
use tahoe_hms::{presets, AccessProfile};
use tahoe_memprof::{ProfileDb, Sampler, SamplerConfig};
use tahoe_taskrt::TaskClassId;

fn bench_profiler(c: &mut Criterion) {
    let dram = presets::dram(1 << 30);
    c.bench_function("observe", |b| {
        let mut s = Sampler::new(SamplerConfig::default());
        let p = AccessProfile::streaming(120_000, 60_000);
        b.iter(|| s.observe(std::hint::black_box(&p), 1.0e6, &dram))
    });
    c.bench_function("record+get", |b| {
        let mut s = Sampler::new(SamplerConfig::default());
        let p = AccessProfile::streaming(120_000, 60_000);
        let obs = s.observe(&p, 1.0e6, &dram);
        let mut db = ProfileDb::new();
        let mut i = 0u32;
        b.iter(|| {
            let class = TaskClassId(i % 8);
            let obj = tahoe_hms::ObjectId(i % 64);
            db.record(class, obj, std::hint::black_box(&obs));
            i = i.wrapping_add(1);
            db.get(class, obj)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_profiler
}
criterion_main!(benches);
