//! Property tests for the static plan auditor against the real solver
//! stack: every solver-produced migration plan — DP, branch-and-bound,
//! greedy, and the combined `solve_mck` (which covers the binary
//! restriction at two tiers) — must audit *clean* on every workload in
//! the suite, at both 2- and 3-tier depth. And the acceptance is
//! tight: a single adversarial edit to an accepted plan (inflate one
//! object's size, undeclare one racing access, retarget one move,
//! duplicate one step) must flip the verdict with the matching typed
//! diagnostic.

use proptest::prelude::*;

use tahoe_core::measured::mck_items_for;
use tahoe_core::prelude::Platform;
use tahoe_core::{audit_plan, App, ExtraAccess, MigrationPlan, PlanContext, PlanStep};
use tahoe_core::{SanitizeReport, ViolationKind};
use tahoe_hms::TierSpec;
use tahoe_placement::{solve_mck, solve_mck_bnb, solve_mck_dp, solve_mck_greedy};
use tahoe_workloads::{all_workloads, Scale};

/// Preset tier specs for one workload at the requested depth.
fn specs_for(app: &App, tiers: usize) -> Vec<TierSpec> {
    let fp = app.footprint();
    let dram = (fp / 4).max(1 << 20);
    if tiers >= 3 {
        Platform::optane_cxl(dram, fp / 2, 4 * fp).tier_specs()
    } else {
        Platform::optane(dram, 4 * fp).tier_specs()
    }
}

/// Solve the placement with the chosen solver and lower it to the
/// promote-from-spill migration plan the runtime would execute.
fn solver_plan(app: &App, specs: &[TierSpec], solver: usize) -> (MigrationPlan, PlanContext) {
    let items = mck_items_for(app, specs);
    let caps: Vec<u64> = specs.iter().map(|s| s.capacity).collect();
    let assignment = match solver {
        0 => solve_mck_dp(&items, &caps).expect("dp solves"),
        // B&B bails out on wide instances; the combined solver is the
        // fallback the runtime itself uses.
        1 => solve_mck_bnb(&items, &caps)
            .expect("bnb solves")
            .unwrap_or_else(|| solve_mck(&items, &caps).expect("mck solves")),
        2 => solve_mck_greedy(&items, &caps).expect("greedy solves"),
        _ => solve_mck(&items, &caps).expect("mck solves"),
    };
    let last = (specs.len() - 1) as u8;
    let boundary = app.windows().saturating_sub(1).min(2);
    let plan = MigrationPlan {
        initial_tiers: vec![last; app.objects.len()],
        steps: assignment
            .tiers
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != last)
            .map(|(i, &t)| PlanStep {
                object: i as u32,
                to_tier: t,
                window: boundary,
            })
            .collect(),
    };
    let ctx = PlanContext::new(app.objects.iter().map(|o| o.size).collect());
    (plan, ctx)
}

fn audit(app: &App, plan: &MigrationPlan, specs: &[TierSpec], ctx: &PlanContext) -> SanitizeReport {
    audit_plan(&app.graph, plan, specs, ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Acceptance: every solver × workload × tier depth yields a plan
    /// the auditor certifies sound.
    #[test]
    fn auditor_accepts_every_solver_plan(
        workload in 0usize..12,
        tiers in 2usize..4,
        solver in 0usize..4,
    ) {
        let app = &all_workloads(Scale::Test)[workload];
        let specs = specs_for(app, tiers);
        let (plan, ctx) = solver_plan(app, &specs, solver);
        let rep = audit(app, &plan, &specs, &ctx);
        prop_assert!(
            rep.is_clean(),
            "{} ({tiers} tiers, solver {solver}): {:?}",
            app.name,
            rep.violations
        );
    }

    /// Rejection: one edit to an accepted plan or its context must be
    /// caught with the matching diagnostic, never absorbed.
    #[test]
    fn auditor_rejects_single_edit_mutations(
        workload in 0usize..12,
        tiers in 2usize..4,
        mutation in 0usize..4,
    ) {
        let app = &all_workloads(Scale::Test)[workload];
        let specs = specs_for(app, tiers);
        let (mut plan, mut ctx) = solver_plan(app, &specs, 3);
        if plan.steps.is_empty() {
            // Degenerate instance: nothing to mutate.
            return Ok(());
        }
        let step = plan.steps[0];
        let expect = match mutation {
            0 => {
                // Inflate the moved object past its destination tier:
                // the step must overflow the capacity ledger.
                let mut sizes: Vec<u64> = app.objects.iter().map(|o| o.size).collect();
                sizes[step.object as usize] += specs[step.to_tier as usize].capacity + 1;
                ctx = PlanContext::new(sizes);
                ViolationKind::PlanOverCapacity
            }
            1 => {
                // Undeclare one access concurrent with the move — the
                // ordering that made the plan schedule-universally safe
                // is gone for that access.
                let racer = app.graph.tasks().len() as u32 - 1;
                ctx = ctx.with_extra(vec![ExtraAccess {
                    task: racer,
                    object: step.object,
                    writes: false,
                }]);
                ViolationKind::PlanMoveRace
            }
            2 => {
                // Retarget one move off the tier list.
                plan.steps[0].to_tier = specs.len() as u8 + 5;
                ViolationKind::PlanUnknownTier
            }
            _ => {
                // Move the same object twice in one window.
                plan.steps.push(PlanStep {
                    object: step.object,
                    to_tier: (specs.len() - 1) as u8,
                    window: step.window,
                });
                ViolationKind::PlanDoubleMove
            }
        };
        let rep = audit(app, &plan, &specs, &ctx);
        prop_assert!(
            rep.count(expect) > 0,
            "{} ({tiers} tiers, mutation {mutation}): expected {expect:?}, got {:?}",
            app.name,
            rep.violations
        );
    }
}
