//! The multiple-choice knapsack must be a strict generalization: on a
//! two-tier platform it must reproduce the binary knapsack's plan *bit
//! for bit* — same chosen set, same float total — for every workload
//! in the suite, not just for random property-test instances. Any
//! drift here would silently change the committed experiment tables.

use tahoe_core::measured::mck_items_for;
use tahoe_placement::{solve, solve_mck, Item};
use tahoe_workloads::{all_workloads, Scale};

#[test]
fn mck_at_two_tiers_matches_the_binary_plan_on_every_workload() {
    let apps = all_workloads(Scale::Test);
    assert_eq!(apps.len(), 12, "the suite is twelve workloads");
    for app in &apps {
        let platform =
            tahoe_core::prelude::Platform::emulated_bw(0.25, app.footprint() / 4, u64::MAX / 4)
                .expect("valid platform");
        let specs = platform.tier_specs();
        let items = mck_items_for(app, &specs);
        let caps: Vec<u64> = specs.iter().map(|s| s.capacity).collect();
        let plan = solve_mck(&items, &caps).expect("two-tier MCK solves");

        let binary: Vec<Item> = items
            .iter()
            .map(|it| Item {
                id: it.id,
                size: it.size,
                value: it.values[0] - it.values[1],
            })
            .collect();
        let expect = solve(&binary, caps[0]);

        assert_eq!(
            plan.objects_on(&items, 0),
            expect.chosen,
            "{}: MCK DRAM set diverged from the binary solver",
            app.name
        );
        assert_eq!(
            plan.total_value.to_bits(),
            expect.total_value.to_bits(),
            "{}: MCK total value {} not bit-identical to binary {}",
            app.name,
            plan.total_value,
            expect.total_value
        );
        assert_eq!(
            plan.per_tier_bytes[0], expect.total_size,
            "{}: DRAM bytes diverged",
            app.name
        );
    }
}
