//! Perf-regression gate CLI: compare a fresh `BENCH_*.json` artifact
//! against its committed baseline and fail on regression.
//!
//! ```sh
//! cargo run -p tahoe-bench --release --bin benchgate -- \
//!     baselines/BENCH_par.smoke.json target/par-artifact/BENCH_par.json
//! ```
//!
//! Exit status: 0 when the gate passes, 1 on violations or structural
//! errors (missing files, malformed JSON, schema mismatch).

use std::process::ExitCode;

use tahoe_bench::gate;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: benchgate <baseline.json> <fresh.json>");
        return ExitCode::FAILURE;
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("read {p}: {e}"));
    let (baseline, fresh) = match (read(baseline_path), read(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("benchgate: {e}");
            return ExitCode::FAILURE;
        }
    };
    match gate::compare_text(&baseline, &fresh) {
        Ok(violations) if violations.is_empty() => {
            println!("benchgate: PASS ({fresh_path} vs {baseline_path})");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            eprintln!("benchgate: FAIL ({fresh_path} vs {baseline_path})");
            for v in &violations {
                eprintln!("  - {v}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("benchgate: error: {e}");
            ExitCode::FAILURE
        }
    }
}
