//! Experiment driver: regenerate any table/figure of the reproduction.
//!
//! ```sh
//! cargo run -p tahoe-bench --release --bin exp -- all
//! cargo run -p tahoe-bench --release --bin exp -- e4 e7
//! cargo run -p tahoe-bench --release --bin exp -- obs    # CI smoke artifact
//! cargo run -p tahoe-bench --release --bin exp -- real --smoke
//! ```

use std::process::ExitCode;

/// Output directory for the `obs` artifact (override with `OBS_DIR`).
fn obs_dir() -> String {
    std::env::var("OBS_DIR").unwrap_or_else(|_| "target/obs-artifact".to_string())
}

/// Output directory for the `real` artifact (override with `REAL_DIR`).
fn real_dir() -> String {
    std::env::var("REAL_DIR").unwrap_or_else(|_| "target/real-artifact".to_string())
}

/// Output directory for the 3-tier `real --tiers 3` artifact (override
/// with `REAL3_DIR`). Separate from `real_dir` so the two sweeps'
/// `BENCH_real.json` files never clobber each other.
fn real3_dir() -> String {
    std::env::var("REAL3_DIR").unwrap_or_else(|_| "target/real3-artifact".to_string())
}

/// Output directory for the `par` artifact (override with `PAR_DIR`).
fn par_dir() -> String {
    std::env::var("PAR_DIR").unwrap_or_else(|_| "target/par-artifact".to_string())
}

/// Output directory for the `audit` artifact (override with `AUDIT_DIR`).
fn audit_dir() -> String {
    std::env::var("AUDIT_DIR").unwrap_or_else(|_| "target/audit-artifact".to_string())
}

/// Output directory for the `sanitize` artifact (override with `SANITIZE_DIR`).
fn sanitize_dir() -> String {
    std::env::var("SANITIZE_DIR").unwrap_or_else(|_| "target/sanitize-artifact".to_string())
}

/// Output directory for the `verify` artifact (override with `VERIFY_DIR`).
fn verify_dir() -> String {
    std::env::var("VERIFY_DIR").unwrap_or_else(|_| "target/verify-artifact".to_string())
}

/// Output directory for the `tenant` artifact (override with `TENANT_DIR`).
fn tenant_dir() -> String {
    std::env::var("TENANT_DIR").unwrap_or_else(|_| "target/tenant-artifact".to_string())
}

/// Output directory for the `blame` artifact (override with `BLAME_DIR`).
fn blame_dir() -> String {
    std::env::var("BLAME_DIR").unwrap_or_else(|_| "target/blame-artifact".to_string())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    // `--tiers N` (default 2) selects the platform depth of `real`.
    let mut tiers = 2usize;
    if let Some(i) = args.iter().position(|a| a == "--tiers") {
        let Some(v) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
            eprintln!("--tiers requires a numeric argument");
            return ExitCode::FAILURE;
        };
        tiers = v;
        args.drain(i..=i + 1);
    }
    if args.is_empty() {
        eprintln!(
            "usage: exp <all|e1|e2|...|e13|obs|real|par|audit|sanitize|verify|tenant|blame> [--smoke] [--tiers N] [more experiments]"
        );
        return ExitCode::FAILURE;
    }
    for arg in &args {
        match arg.as_str() {
            "all" => tahoe_bench::all(),
            "obs" => {
                if let Err(e) = tahoe_bench::obs_artifact(&obs_dir()) {
                    eprintln!("obs artifact failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "real" => {
                let dir = if tiers >= 3 { real3_dir() } else { real_dir() };
                if let Err(e) = tahoe_bench::real(smoke, tiers, &dir) {
                    eprintln!("real experiment failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "par" => {
                if let Err(e) = tahoe_bench::par(smoke, &par_dir()) {
                    eprintln!("par experiment failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "audit" => {
                if let Err(e) = tahoe_bench::audit(smoke, &audit_dir()) {
                    eprintln!("audit experiment failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "sanitize" => {
                if let Err(e) = tahoe_bench::sanitize(smoke, &sanitize_dir()) {
                    eprintln!("sanitize experiment failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "verify" => {
                if let Err(e) = tahoe_bench::verify(smoke, &verify_dir()) {
                    eprintln!("verify experiment failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "tenant" => {
                if let Err(e) = tahoe_bench::tenant(smoke, &tenant_dir()) {
                    eprintln!("tenant experiment failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "blame" => {
                if let Err(e) = tahoe_bench::blame(smoke, &blame_dir()) {
                    eprintln!("blame experiment failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "e1" => tahoe_bench::e1(),
            "e2" => tahoe_bench::e2(),
            "e3" => tahoe_bench::e3(),
            "e4" => tahoe_bench::e4(),
            "e5" => tahoe_bench::e5(),
            "e6" => tahoe_bench::e6(),
            "e7" => tahoe_bench::e7(),
            "e8" => tahoe_bench::e8(),
            "e9" => tahoe_bench::e9(),
            "e10" => tahoe_bench::e10(),
            "e11" => tahoe_bench::e11(),
            "e12" => tahoe_bench::e12(),
            "e13" => tahoe_bench::e13(),
            other => {
                eprintln!("unknown experiment: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
