//! Experiment harness: regenerates every table and figure of the
//! reproduction (E1–E12 in `DESIGN.md` / `EXPERIMENTS.md`).
//!
//! Each `eN()` function prints the same rows/series the paper's
//! corresponding table or figure reports, against the simulated platform.
//! Run them through the `exp` binary:
//!
//! ```sh
//! cargo run -p tahoe-bench --release --bin exp -- all
//! cargo run -p tahoe-bench --release --bin exp -- e4
//! ```

// The harness only drives the runtime crates; it never needs raw memory.
#![forbid(unsafe_code)]

use tahoe_core::prelude::*;
use tahoe_core::TahoeOptions;
use tahoe_hms::ObjectId;
use tahoe_workloads::{all_workloads, cg, stream, Scale};

pub mod gate;

/// DRAM budget used throughout the main experiments: a quarter of the
/// application footprint (the paper's DRAM ≪ footprint regime).
pub fn dram_budget(app: &App) -> u64 {
    (app.footprint() / 4).max(1 << 20)
}

/// Platform with bandwidth-limited NVM (`frac` of DRAM bandwidth).
pub fn platform_bw(app: &App, frac: f64) -> Platform {
    Platform::emulated_bw(frac, dram_budget(app), 4 * app.footprint()).expect("valid fraction")
}

/// Platform with latency-limited NVM (`mult` × DRAM latency).
pub fn platform_lat(app: &App, mult: f64) -> Platform {
    Platform::emulated_lat(mult, dram_budget(app), 4 * app.footprint()).expect("valid multiplier")
}

/// Optane-PMM-like platform.
pub fn platform_optane(app: &App) -> Platform {
    Platform::optane(dram_budget(app), 4 * app.footprint())
}

fn rt(platform: Platform) -> Runtime {
    Runtime::new(platform, RuntimeConfig::default())
}

fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Parse a comma-separated numeric list from env var `name`, falling
/// back to `default` when unset. Lets CI jobs widen an experiment's
/// matrix (e.g. the stress-fuzz schedule sweep) without a code change.
fn env_list<T>(name: &str, default: &[T]) -> Result<Vec<T>, String>
where
    T: std::str::FromStr + Copy,
    <T as std::str::FromStr>::Err: std::fmt::Display,
{
    match std::env::var(name) {
        Ok(raw) => {
            let v = raw
                .split(',')
                .map(|s| s.trim())
                .filter(|s| !s.is_empty())
                .map(|s| s.parse::<T>().map_err(|e| format!("{name}={raw}: {e}")))
                .collect::<Result<Vec<T>, String>>()?;
            if v.is_empty() {
                return Err(format!("{name} set but empty"));
            }
            Ok(v)
        }
        Err(_) => Ok(default.to_vec()),
    }
}

/// E1 — NVM-only slowdown vs DRAM-only under bandwidth-limited NVM
/// (paper's "performance on NVM with various bandwidth" figure).
pub fn e1() {
    banner("E1  NVM-only slowdown, bandwidth-limited NVM (vs DRAM-only)");
    println!(
        "{:<10} {:>8} {:>8} {:>8}",
        "workload", "1/2 BW", "1/4 BW", "1/8 BW"
    );
    for app in all_workloads(Scale::Bench) {
        print!("{:<10}", app.name);
        for frac in [0.5, 0.25, 0.125] {
            let r = rt(platform_bw(&app, frac));
            let d = r.run(&app, &PolicyKind::DramOnly);
            let n = r.run(&app, &PolicyKind::NvmOnly);
            print!(" {:>7.2}x", n.slowdown_vs(d.makespan_ns));
        }
        println!();
    }
}

/// E2 — NVM-only slowdown under latency-limited NVM.
pub fn e2() {
    banner("E2  NVM-only slowdown, latency-limited NVM (vs DRAM-only)");
    println!(
        "{:<10} {:>8} {:>8} {:>8}",
        "workload", "2x LAT", "4x LAT", "8x LAT"
    );
    for app in all_workloads(Scale::Bench) {
        print!("{:<10}", app.name);
        for mult in [2.0, 4.0, 8.0] {
            let r = rt(platform_lat(&app, mult));
            let d = r.run(&app, &PolicyKind::DramOnly);
            let n = r.run(&app, &PolicyKind::NvmOnly);
            print!(" {:>7.2}x", n.slowdown_vs(d.makespan_ns));
        }
        println!();
    }
}

/// E3 — per-object placement motivation on CG: which single object group
/// in DRAM bridges how much of the gap, under bandwidth- vs
/// latency-limited NVM (the paper's lhs/rhs/in_buffer study).
pub fn e3() {
    banner("E3  Which object in DRAM? (CG, normalized to DRAM-only)");
    let app = cg::app(Scale::Bench);
    let groups: Vec<(&str, Vec<ObjectId>)> = {
        let by_prefix = |p: &str| {
            app.objects
                .iter()
                .enumerate()
                .filter(|(_, o)| o.name.starts_with(p))
                .map(|(i, _)| ObjectId(i as u32))
                .collect::<Vec<_>>()
        };
        vec![
            ("A (matrix)", by_prefix("A")),
            ("p (gathered)", by_prefix("p")),
            ("x+q+r", {
                let mut v = by_prefix("x");
                v.extend(by_prefix("q"));
                v.extend(by_prefix("r"));
                v
            }),
        ]
    };
    println!("{:<14} {:>10} {:>10}", "in DRAM", "1/2 BW", "4x LAT");
    for make in [
        ("NVM-only", None),
        ("A (matrix)", Some(0)),
        ("p (gathered)", Some(1)),
        ("x+q+r", Some(2)),
    ] {
        print!("{:<14}", make.0);
        for plat in [platform_bw(&app, 0.5), platform_lat(&app, 4.0)] {
            // The pinned platform must hold the group: give DRAM exactly
            // the group's bytes (the paper pins one object at a time).
            let policy = match make.1 {
                None => PolicyKind::NvmOnly,
                Some(g) => PolicyKind::Pinned(groups[g].1.clone()),
            };
            let sized = match make.1 {
                None => plat.clone(),
                Some(g) => {
                    let bytes: u64 = groups[g]
                        .1
                        .iter()
                        .map(|o| app.objects[o.index()].size)
                        .sum();
                    plat.with_dram_capacity(bytes.max(1 << 20))
                }
            };
            let r = rt(sized);
            let d = r.run(&app, &PolicyKind::DramOnly);
            let x = r.run(&app, &policy);
            print!(" {:>9.2}x", x.slowdown_vs(d.makespan_ns));
        }
        println!();
    }
}

/// All-policy comparison on one platform (core of E4/E5/E10).
fn policy_table(title: &str, mk: impl Fn(&App) -> Platform, extra_tahoe: &[(String, PolicyKind)]) {
    banner(title);
    print!(
        "{:<10} {:>8} {:>9} {:>9} {:>8} {:>7}",
        "workload", "NVM-only", "1st-touch", "hw-cache", "static", "tahoe"
    );
    for (name, _) in extra_tahoe {
        print!(" {:>12}", name);
    }
    println!("   (slowdown vs DRAM-only)");
    let mut geo = vec![1.0f64; 5 + extra_tahoe.len()];
    let mut napps = 0u32;
    for app in all_workloads(Scale::Bench) {
        let r = rt(mk(&app));
        let d = r.run(&app, &PolicyKind::DramOnly);
        print!("{:<10}", app.name);
        let mut policies: Vec<PolicyKind> = vec![
            PolicyKind::NvmOnly,
            PolicyKind::FirstTouch,
            PolicyKind::HwCache,
            PolicyKind::StaticOffline,
            PolicyKind::tahoe(),
        ];
        policies.extend(extra_tahoe.iter().map(|(_, p)| p.clone()));
        for (i, p) in policies.iter().enumerate() {
            let rep = r.run(&app, p);
            let s = rep.slowdown_vs(d.makespan_ns);
            geo[i] *= s;
            let w = [8, 9, 9, 8, 7][i.min(4)].max(if i >= 5 { 12 } else { 0 });
            print!(" {:>w$.2}", s, w = w);
        }
        println!();
        napps += 1;
    }
    print!("{:<10}", "geomean");
    for (i, g) in geo.iter().enumerate() {
        let w = [8, 9, 9, 8, 7][i.min(4)].max(if i >= 5 { 12 } else { 0 });
        print!(" {:>w$.2}", g.powf(1.0 / napps as f64), w = w);
    }
    println!();
}

/// E4 — the main comparison under bandwidth-limited NVM (1/2 DRAM BW).
pub fn e4() {
    policy_table(
        "E4  Main comparison, NVM = 1/2 DRAM bandwidth",
        |app| platform_bw(app, 0.5),
        &[],
    );
}

/// E5 — the main comparison under latency-limited NVM (4x DRAM latency).
pub fn e5() {
    policy_table(
        "E5  Main comparison, NVM = 4x DRAM latency",
        |app| platform_lat(app, 4.0),
        &[],
    );
}

/// E6 — contribution of the four techniques (global search, +local,
/// +chunking, +initial placement), cumulative, bandwidth-limited NVM.
pub fn e6() {
    banner("E6  Technique contributions (cumulative makespan reduction, 1/2 BW)");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "workload", "none", "+global", "+local", "+chunk", "+initial"
    );
    for app in all_workloads(Scale::Bench) {
        let r = rt(platform_bw(&app, 0.5));
        let d = r.run(&app, &PolicyKind::DramOnly).makespan_ns;
        let stages: Vec<TahoeOptions> = {
            let base = TahoeOptions {
                local_search: false,
                global_search: false,
                chunking: false,
                initial_placement: false,
                proactive: true,
                distinguish_rw: true,
                adaptive: true,
                lookahead: 16,
            };
            let mut v = vec![base.clone()];
            let mut s = base;
            s.global_search = true;
            v.push(s.clone());
            s.local_search = true;
            v.push(s.clone());
            s.chunking = true;
            v.push(s.clone());
            s.initial_placement = true;
            v.push(s);
            v
        };
        print!("{:<10}", app.name);
        for o in stages {
            let rep = r.run(&app, &PolicyKind::Tahoe(o));
            print!(" {:>9.2}x", rep.makespan_ns / d);
        }
        println!();
    }
}

/// E7 — migration statistics table (count, MB, pure runtime %, %overlap),
/// bandwidth-limited NVM. Shown twice: with the paper's initial placement
/// (which the paper itself observes usually matches the global plan, so
/// few migrations remain) and without it (all data starts in NVM, so the
/// migrations the planner *would* do become visible).
pub fn e7() {
    banner("E7  Migration details under Tahoe (NVM = 1/2 DRAM bandwidth)");
    println!(
        "{:<10} | {:^31} | {:^40}",
        "workload", "with initial placement", "all data starts in NVM"
    );
    println!(
        "{:<10} | {:>5} {:>10} {:>6} {:>6} | {:>5} {:>10} {:>6} {:>6} {:>7}",
        "", "migr", "moved(MB)", "cost%", "ovlp%", "migr", "moved(MB)", "cost%", "ovlp%", "replans"
    );
    for app in all_workloads(Scale::Bench) {
        let r = rt(platform_bw(&app, 0.5));
        let a = r.run(&app, &PolicyKind::tahoe());
        let o = TahoeOptions {
            initial_placement: false,
            ..TahoeOptions::default()
        };
        let b = r.run(&app, &PolicyKind::Tahoe(o));
        println!(
            "{:<10} | {:>5} {:>10.1} {:>6.2} {:>6.1} | {:>5} {:>10.1} {:>6.2} {:>6.1} {:>7}",
            app.name,
            a.migrations.count,
            a.migrations.megabytes(),
            a.overhead_pct(),
            a.pct_overlap(),
            b.migrations.count,
            b.migrations.megabytes(),
            b.overhead_pct(),
            b.pct_overlap(),
            b.replans
        );
    }
}

/// E8 — DRAM-size sensitivity: Tahoe vs bounds as the DRAM budget shrinks.
pub fn e8() {
    banner("E8  DRAM-size sensitivity (slowdown vs DRAM-only, 1/2 BW NVM)");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "workload", "NVM-only", "1/16", "1/8", "1/4", "1/2"
    );
    for app in all_workloads(Scale::Bench) {
        let foot = app.footprint();
        print!("{:<10}", app.name);
        let base = rt(platform_bw(&app, 0.5));
        let d = base.run(&app, &PolicyKind::DramOnly);
        let n = base.run(&app, &PolicyKind::NvmOnly);
        print!(" {:>8.2}x", n.slowdown_vs(d.makespan_ns));
        for denom in [16u64, 8, 4, 2] {
            let plat = platform_bw(&app, 0.5).with_dram_capacity((foot / denom).max(1 << 20));
            let rep = rt(plat).run(&app, &PolicyKind::tahoe());
            print!(" {:>8.2}x", rep.slowdown_vs(d.makespan_ns));
        }
        println!();
    }
}

/// E9 — scaling with worker count on CG (the paper's strong-scaling
/// figure, reinterpreted for a shared-memory task runtime).
pub fn e9() {
    banner("E9  Worker scaling on CG (NUMA-remote-style NVM)");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10}",
        "workers", "DRAM-only", "tahoe", "NVM-only", "tahoe/DRAM"
    );
    let app = cg::app(Scale::Bench);
    for workers in [1usize, 2, 4, 8, 16, 32] {
        let plat = Platform::new(
            tahoe_hms::presets::dram(dram_budget(&app)),
            tahoe_hms::presets::numa_remote(4 * app.footprint()),
            5.0,
        );
        let r = Runtime::new(plat, RuntimeConfig::default().with_workers(workers));
        let d = r.run(&app, &PolicyKind::DramOnly);
        let t = r.run(&app, &PolicyKind::tahoe());
        let n = r.run(&app, &PolicyKind::NvmOnly);
        println!(
            "{:<8} {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>9.2}x",
            workers,
            d.makespan_ns / 1e6,
            t.makespan_ns / 1e6,
            n.makespan_ns / 1e6,
            t.slowdown_vs(d.makespan_ns)
        );
    }
}

/// E10 — Optane-PMM platform with the read/write-distinction ablation
/// (the journal paper's "w. drw vs w.o drw" figure). Both ablation
/// columns start all data in NVM so the *model's* decisions — not the
/// model-free initial placement — determine the outcome.
pub fn e10() {
    let w_rw = PolicyKind::Tahoe(TahoeOptions {
        initial_placement: false,
        ..TahoeOptions::default()
    });
    let wo_rw = PolicyKind::Tahoe(TahoeOptions {
        initial_placement: false,
        distinguish_rw: false,
        ..TahoeOptions::default()
    });
    policy_table(
        "E10  Optane PMM platform, read/write-distinction ablation (no-init variants)",
        platform_optane,
        &[
            ("tahoe-ni w.rw".to_string(), w_rw),
            ("tahoe-ni wo.rw".to_string(), wo_rw),
        ],
    );
}

/// E11 — proactive-migration ablation: overlapped vs synchronous copies.
pub fn e11() {
    banner("E11  Proactive vs synchronous migration (1/2 BW NVM, no initial placement)");
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>10}",
        "workload", "proactive", "synchronous", "pro ovlp%", "sync ovlp%"
    );
    for app in all_workloads(Scale::Bench) {
        let r = rt(platform_bw(&app, 0.5));
        let pro = TahoeOptions {
            initial_placement: false, // force migrations to exist
            ..TahoeOptions::default()
        };
        let sync = TahoeOptions {
            proactive: false,
            ..pro.clone()
        };
        let a = r.run(&app, &PolicyKind::Tahoe(pro));
        let b = r.run(&app, &PolicyKind::Tahoe(sync));
        println!(
            "{:<10} {:>10.2}ms {:>10.2}ms {:>10.1} {:>10.1}",
            app.name,
            a.makespan_ns / 1e6,
            b.makespan_ns / 1e6,
            a.pct_overlap(),
            b.pct_overlap()
        );
    }
}

/// E12 — look-ahead depth sensitivity.
pub fn e12() {
    banner("E12  Look-ahead depth sensitivity (makespan, 1/2 BW NVM, no initial placement)");
    print!("{:<10}", "workload");
    for d in [1usize, 4, 16, 64] {
        print!(" {:>9}", format!("depth {d}"));
    }
    println!();
    for app in all_workloads(Scale::Bench) {
        let r = rt(platform_bw(&app, 0.5));
        print!("{:<10}", app.name);
        for depth in [1usize, 4, 16, 64] {
            let o = TahoeOptions {
                initial_placement: false,
                lookahead: depth,
                ..TahoeOptions::default()
            };
            let rep = r.run(&app, &PolicyKind::Tahoe(o));
            print!(" {:>7.2}ms", rep.makespan_ns / 1e6);
        }
        println!();
    }
}

/// E13 — NVM write-endurance extension: store traffic shielded from the
/// NVM and write amplification per policy (Optane platform). Not a paper
/// figure; an extension natural to PCM-class endurance budgets.
pub fn e13() {
    banner("E13  NVM write traffic and shielding (Optane platform)");
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>12}",
        "workload", "NVM MB (1st)", "NVM MB (tahoe)", "shield(1st)", "shield(tahoe)"
    );
    for app in all_workloads(Scale::Bench) {
        let r = rt(platform_optane(&app));
        let ft = r.run(&app, &PolicyKind::FirstTouch);
        let th = r.run(&app, &PolicyKind::tahoe());
        println!(
            "{:<10} {:>14.1} {:>14.1} {:>11.0}% {:>11.0}%",
            app.name,
            ft.wear.nvm_written_bytes() as f64 / 1e6,
            th.wear.nvm_written_bytes() as f64 / 1e6,
            100.0 * ft.write_shielding(),
            100.0 * th.write_shielding(),
        );
    }
}

/// Observability artifact: run STREAM at test scale with the full
/// observability layer on, check the capture is well-formed and
/// deterministic, and write the machine-diffable artifact (JSONL event
/// stream, Chrome/Perfetto trace, metrics JSON) under `dir`.
///
/// Used by the CI bench-smoke job; any malformed or non-deterministic
/// output is an error, not a warning.
pub fn obs_artifact(dir: &str) -> Result<(), String> {
    use tahoe_obs::{json, Event};

    banner("OBS  observability artifact (stream @ test scale, all data starts in NVM)");
    let app = stream::app(Scale::Test);
    // 1/8-bandwidth NVM: at test scale the promotion gain must clear the
    // replanning hysteresis margin, which it does not at milder ratios.
    let r = rt(platform_bw(&app, 0.125));
    // No initial placement: the planner must visibly migrate the hot
    // blocks, so the artifact exercises the migration events too.
    let policy = PolicyKind::Tahoe(TahoeOptions {
        initial_placement: false,
        ..TahoeOptions::default()
    });
    let (report, capture) = r.run_observed(&app, &policy);
    let (_, again) = r.run_observed(&app, &policy);

    let jsonl = capture.to_jsonl();
    if jsonl != again.to_jsonl() {
        return Err("observed runs are not byte-identical".into());
    }
    for (i, line) in jsonl.lines().enumerate() {
        let v = json::parse(line).map_err(|e| format!("events.jsonl line {}: {e}", i + 1))?;
        if v.get("ev").and_then(|t| t.as_str()).is_none() {
            return Err(format!("events.jsonl line {} lacks an `ev` tag", i + 1));
        }
    }
    if !capture
        .events
        .iter()
        .any(|e| matches!(e, Event::MigrationIssued { .. }))
    {
        return Err("expected at least one migration event".into());
    }
    let trace = capture.to_chrome_trace();
    json::parse(&trace).map_err(|e| format!("trace.json: {e}"))?;
    let metrics = report.metrics.to_json();
    json::parse(&metrics).map_err(|e| format!("metrics.json: {e}"))?;

    // BENCH_obs.json: the gate-comparable digest of the capture. The
    // simulated run is deterministic (checked above), so the gate may
    // demand exact equality against the committed baseline.
    let mut by_kind = std::collections::BTreeMap::<&str, u64>::new();
    for e in &capture.events {
        *by_kind.entry(e.kind()).or_insert(0) += 1;
    }
    let mut summary = String::new();
    summary.push_str("{\n  \"schema\": \"tahoe-bench-obs/v1\",\n");
    summary.push_str(&format!(
        "  \"workload\": {{\"name\": \"{}\", \"footprint_bytes\": {}, \"windows\": {}, \"tasks\": {}}},\n",
        app.name,
        app.footprint(),
        app.windows(),
        report.tasks
    ));
    summary.push_str(&format!(
        "  \"events\": {{\"total\": {}, \"by_kind\": {{",
        capture.events.len()
    ));
    for (i, (kind, n)) in by_kind.iter().enumerate() {
        summary.push_str(&format!("{}\"{kind}\": {n}", if i > 0 { ", " } else { "" }));
    }
    summary.push_str("}},\n");
    // The simulated path records through an unbounded buffer, so the
    // drop counter must read zero; surfacing it here lets the gate
    // assert "no drops" instead of inferring it from an absent key.
    summary.push_str(&format!(
        "  \"makespan_ns\": {:.1},\n  \"migrations\": {},\n  \"ring_dropped\": {}\n}}\n",
        report.makespan_ns,
        report.migrations.count,
        report.metrics.counter("obs.ring_dropped").unwrap_or(0)
    ));
    json::parse(&summary).map_err(|e| format!("BENCH_obs.json self-check: {e}"))?;

    let path = std::path::Path::new(dir);
    std::fs::create_dir_all(path).map_err(|e| format!("create {dir}: {e}"))?;
    for (name, text) in [
        ("events.jsonl", &jsonl),
        ("trace.json", &trace),
        ("metrics.json", &metrics),
        ("BENCH_obs.json", &summary),
    ] {
        std::fs::write(path.join(name), text).map_err(|e| format!("write {name}: {e}"))?;
    }
    println!(
        "{} events, {} counters, {} tasks, makespan {:.3}ms -> {dir}/",
        capture.events.len(),
        report.metrics.counters.len(),
        report.tasks,
        report.makespan_ns / 1e6
    );
    Ok(())
}

/// `exp audit`: the model-accuracy audit. Calibrates the machine, runs
/// the parallel measured Tahoe policy with the flight recorder on, pairs
/// every placement decision's predicted per-access saving with the
/// measured NVM-vs-DRAM wall-clock delta, probes the recorder's
/// self-overhead, and writes a machine-readable `BENCH_audit.json`.
pub fn audit(smoke: bool, dir: &str) -> Result<(), String> {
    use tahoe_core::measured::MeasuredRuntime;
    use tahoe_memprof::wallclock::WallClockConfig;
    use tahoe_obs::json;

    banner(if smoke {
        "AUDIT model accuracy (smoke): predicted vs measured placement benefit"
    } else {
        "AUDIT model accuracy: predicted vs measured placement benefit"
    });
    let (app, cfg, workers, reps) = if smoke {
        (
            stream::app(Scale::Test),
            WallClockConfig::smoke(),
            2usize,
            3u32,
        )
    } else {
        (stream::app(Scale::Bench), WallClockConfig::full(), 4, 3)
    };
    let platform = platform_bw(&app, 0.25);
    let rt = MeasuredRuntime::new(platform, cfg);
    let cal = rt.calibrate()?;
    println!(
        "  fitted DRAM {:.2} GB/s / {:.1} ns, emulated NVM {:.2} GB/s / {:.1} ns, cf_bw {:.3}, cf_lat {:.3}",
        cal.dram.read_bw_gbps,
        cal.dram.read_lat_ns,
        cal.nvm.read_bw_gbps,
        cal.nvm.read_lat_ns,
        cal.cf_bw,
        cal.cf_lat
    );

    let run_seed = 0u64;
    let audit = rt.run_model_audit(&app, &cal, workers, run_seed)?;
    let probe = rt.probe_obs_overhead(&app, &cal, workers, run_seed, reps)?;

    println!(
        "  {:<8} {:>10} {:>7} {:>9} {:>13} {:>13} {:>9} {:>5}",
        "object", "bytes", "chosen", "accesses", "pred ns/acc", "meas ns/acc", "ape%", "sign"
    );
    for r in &audit.rows {
        println!(
            "  {:<8} {:>10} {:>7} {:>9} {:>13.1} {:>13} {:>9} {:>5}",
            r.name,
            r.bytes,
            r.chosen,
            r.accesses,
            r.predicted_saving_ns,
            r.measured_saving_ns
                .map_or("-".to_string(), |v| format!("{v:.1}")),
            r.ape_pct.map_or("-".to_string(), |v| format!("{v:.1}")),
            r.sign_agrees.map_or("-", |s| if s { "+" } else { "-" })
        );
    }
    println!(
        "  audited {} objects: MAPE {:.1}%, sign agreement {:.1}%, {} migrations, wall {:.3} ms",
        audit.audited,
        audit.mape_pct,
        audit.sign_agreement_pct,
        audit.migrations,
        audit.wall_ns / 1e6
    );
    for (key, h) in &audit.hists {
        println!(
            "  hist {:<14} n={:<7} p50={:<10.0} p90={:<10.0} p99={:<10.0} max={:.0} ns",
            key, h.count, h.p50, h.p90, h.p99, h.max
        );
    }
    println!(
        "  obs overhead: off {:.3} ms, on {:.3} ms -> {:.2}% (best of {})",
        probe.off_wall_ns / 1e6,
        probe.on_wall_ns / 1e6,
        probe.overhead_pct,
        probe.reps
    );

    // ---- acceptance invariants ------------------------------------
    if audit.audited == 0 {
        return Err("no object was auditable (no DRAM/NVM sample pair)".into());
    }
    if audit.migrations == 0 {
        return Err("tahoe performed no migrations; audit exercises nothing".into());
    }
    if !audit.hists.iter().any(|(k, _)| k == "task_ns") {
        return Err("flight recorder produced no task latency digest".into());
    }

    // ---- BENCH_audit.json ------------------------------------------
    let topo = tahoe_realmem::numa::probe();
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"tahoe-bench-audit/v1\",\n");
    out.push_str(&format!(
        "  \"machine\": {{\"arch\": \"{}\", \"os\": \"{}\", \"numa_nodes\": {}, \"smoke\": {}}},\n",
        std::env::consts::ARCH,
        std::env::consts::OS,
        topo.nodes,
        smoke
    ));
    out.push_str(&format!(
        "  \"workload\": {{\"name\": \"{}\", \"footprint_bytes\": {}, \"windows\": {}, \"tasks\": {}}},\n",
        app.name,
        app.footprint(),
        app.windows(),
        app.graph.len()
    ));
    out.push_str(&format!(
        "  \"calibration\": {{\"dram_bw_gbps\": {:.6}, \"dram_lat_ns\": {:.6}, \"nvm_bw_gbps\": {:.6}, \"nvm_lat_ns\": {:.6}, \"cf_bw\": {:.6}, \"cf_lat\": {:.6}}},\n",
        cal.dram.read_bw_gbps,
        cal.dram.read_lat_ns,
        cal.nvm.read_bw_gbps,
        cal.nvm.read_lat_ns,
        cal.cf_bw,
        cal.cf_lat
    ));
    out.push_str(&format!(
        "  \"audit\": {{\"policy\": \"{}\", \"workers\": {}, \"run_seed\": {}, \"audited\": {}, \"mape_pct\": {:.6}, \"sign_agreement_pct\": {:.6}, \"migrations\": {}, \"wall_ns\": {:.1}}},\n",
        audit.policy,
        audit.workers,
        audit.run_seed,
        audit.audited,
        audit.mape_pct,
        audit.sign_agreement_pct,
        audit.migrations,
        audit.wall_ns
    ));
    out.push_str("  \"objects\": [\n");
    for (i, r) in audit.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"object\": {}, \"name\": \"{}\", \"bytes\": {}, \"chosen\": {}, \"accesses\": {}, \"predicted_saving_ns\": {:.6}, \"measured_saving_ns\": {}, \"ape_pct\": {}, \"sign_agrees\": {}}}{}\n",
            r.object,
            r.name,
            r.bytes,
            r.chosen,
            r.accesses,
            r.predicted_saving_ns,
            r.measured_saving_ns
                .map_or("null".to_string(), |v| format!("{v:.6}")),
            r.ape_pct.map_or("null".to_string(), |v| format!("{v:.6}")),
            r.sign_agrees
                .map_or("null".to_string(), |b| b.to_string()),
            if i + 1 < audit.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"histograms\": {");
    for (i, (key, h)) in audit.hists.iter().enumerate() {
        out.push_str(&format!(
            "{}\"{}\": {{\"count\": {}, \"p50\": {:.6}, \"p90\": {:.6}, \"p99\": {:.6}, \"max\": {:.6}}}",
            if i > 0 { ", " } else { "" },
            key,
            h.count,
            h.p50,
            h.p90,
            h.p99,
            h.max
        ));
    }
    out.push_str("},\n");
    out.push_str(&format!(
        "  \"overhead\": {{\"off_wall_ns\": {:.1}, \"on_wall_ns\": {:.1}, \"overhead_pct\": {:.6}, \"reps\": {}}}\n}}\n",
        probe.off_wall_ns, probe.on_wall_ns, probe.overhead_pct, probe.reps
    ));
    json::parse(&out).map_err(|e| format!("BENCH_audit.json self-check: {e}"))?;

    let path = std::path::Path::new(dir);
    std::fs::create_dir_all(path).map_err(|e| format!("create {dir}: {e}"))?;
    std::fs::write(path.join("BENCH_audit.json"), &out)
        .map_err(|e| format!("write BENCH_audit.json: {e}"))?;
    println!("  -> {dir}/BENCH_audit.json");
    Ok(())
}

/// The `"tiers"` block of a `tahoe-bench-real/v2` artifact: the
/// platform's ordered tier list with each tier's *preset* name and
/// reference device numbers. This is the v2 fix for the v1 artifact
/// labelling the slow tier "NVM" unconditionally — rows now carry the
/// actual preset name ("NVM(0.25x BW)", "CXL", "Optane PMM", ...).
fn tiers_json(specs: &[tahoe_hms::TierSpec]) -> String {
    let mut out = String::from("  \"tiers\": [\n");
    for (i, s) in specs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"index\": {i}, \"name\": \"{}\", \"read_bw_gbps\": {:.6}, \"write_bw_gbps\": {:.6}, \"read_lat_ns\": {:.6}, \"write_lat_ns\": {:.6}, \"capacity_bytes\": {}}}{}\n",
            s.name,
            s.read_bw_gbps,
            s.write_bw_gbps,
            s.read_lat_ns,
            s.write_lat_ns,
            s.capacity,
            if i + 1 < specs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out
}

/// The `"policies"` block of a `tahoe-bench-real/v2` artifact.
fn policies_json(reports: &[tahoe_core::measured::MeasuredPolicyReport]) -> String {
    let mut out = String::from("  \"policies\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let per_tier = r
            .final_tier_objects
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"wall_ns\": {:.1}, \"bytes_touched\": {}, \"throughput_gbps\": {:.6}, \"checksum\": \"{:016x}\", \"migrations\": {}, \"migrated_bytes\": {}, \"copy_wall_ns\": {:.1}, \"final_dram_objects\": {}, \"final_tier_objects\": [{}]}}{}\n",
            r.policy,
            r.wall_ns,
            r.bytes_touched,
            r.throughput_gbps,
            r.checksum,
            r.migrations,
            r.migrated_bytes,
            r.copy_wall_ns,
            r.final_dram_objects,
            per_tier,
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out
}

/// `exp real [--tiers N]`: the measured-mode experiment. Calibrates the
/// machine, runs the headline policies on `mmap`-arena-backed objects
/// with software-emulated slow tiers, checks the acceptance invariants
/// (every policy's traffic matches the heap reference bit for bit;
/// DRAM-only throughput is at least slow-tier-only throughput), and
/// writes a machine-readable `BENCH_real.json` (schema
/// `tahoe-bench-real/v2`) to `dir`.
///
/// `tiers == 2` is the classic DRAM + emulated-NVM sweep on the stream
/// workload. `tiers == 3` runs the CG workload on a DRAM / CXL / Optane
/// platform sized so the gathered (latency-bound) vector blocks
/// overflow the DRAM budget: the artifact's self-validated `plan` and
/// `modelled` blocks demonstrate the middle tier winning for
/// latency-bound objects and the 3-tier plan beating both 2-tier
/// configurations (DRAM+NVM and DRAM+CXL) on modelled runtime.
pub fn real(smoke: bool, tiers: usize, dir: &str) -> Result<(), String> {
    match tiers {
        2 => real_two(smoke, dir),
        3 => real_three(smoke, dir),
        other => Err(format!("exp real supports --tiers 2 or 3, got {other}")),
    }
}

fn real_two(smoke: bool, dir: &str) -> Result<(), String> {
    use tahoe_core::measured::{reference_checksum, MeasuredRuntime};
    use tahoe_memprof::wallclock::WallClockConfig;
    use tahoe_obs::json;

    banner(if smoke {
        "REAL measured mode (smoke): mmap arenas + wall-clock calibration"
    } else {
        "REAL measured mode: mmap arenas + wall-clock calibration"
    });
    let (app, cfg, reps) = if smoke {
        (stream::app(Scale::Test), WallClockConfig::smoke(), 2)
    } else {
        (stream::app(Scale::Bench), WallClockConfig::full(), 3)
    };
    let platform = platform_bw(&app, 0.25);
    let tier_list = platform.tier_specs();
    let rt = MeasuredRuntime::new(platform, cfg);
    let cal = rt.calibrate()?;
    println!(
        "  fitted DRAM {:.2} GB/s / {:.1} ns, emulated NVM {:.2} GB/s / {:.1} ns, cf_bw {:.3}, cf_lat {:.3}",
        cal.dram.read_bw_gbps,
        cal.dram.read_lat_ns,
        cal.nvm.read_bw_gbps,
        cal.nvm.read_lat_ns,
        cal.cf_bw,
        cal.cf_lat
    );

    let reference = reference_checksum(&app);
    let policies = [
        PolicyKind::DramOnly,
        PolicyKind::NvmOnly,
        PolicyKind::FirstTouch,
        PolicyKind::tahoe(),
    ];
    // Wall clocks are noisy; keep each policy's best-of-`reps` run.
    let mut reports = Vec::with_capacity(policies.len());
    for p in &policies {
        let mut best = rt.run_policy(&app, p, &cal)?;
        for _ in 1..reps {
            let r = rt.run_policy(&app, p, &cal)?;
            if r.wall_ns < best.wall_ns {
                best = r;
            }
        }
        println!(
            "  {:<12} {:>9.3} ms  {:>7.2} GB/s  {} migrations ({} KiB)",
            best.policy,
            best.wall_ns / 1e6,
            best.throughput_gbps,
            best.migrations,
            best.migrated_bytes >> 10
        );
        reports.push(best);
    }

    // ---- acceptance invariants ------------------------------------
    for r in &reports {
        if r.checksum != reference {
            return Err(format!(
                "{}: checksum {:016x} != reference {reference:016x}",
                r.policy, r.checksum
            ));
        }
    }
    let thr = |name: &str| {
        reports
            .iter()
            .find(|r| r.policy == name)
            .map(|r| r.throughput_gbps)
            .expect("policy present")
    };
    let (dram_thr, nvm_thr) = (thr("DRAM-only"), thr("NVM-only"));
    if dram_thr < nvm_thr {
        return Err(format!(
            "DRAM-only throughput {dram_thr:.3} GB/s below NVM-emulated {nvm_thr:.3} GB/s"
        ));
    }

    // ---- BENCH_real.json -------------------------------------------
    let topo = tahoe_realmem::numa::probe();
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"tahoe-bench-real/v2\",\n");
    out.push_str(&format!(
        "  \"machine\": {{\"arch\": \"{}\", \"os\": \"{}\", \"numa_nodes\": {}, \"smoke\": {}}},\n",
        std::env::consts::ARCH,
        std::env::consts::OS,
        topo.nodes,
        smoke
    ));
    out.push_str(&format!(
        "  \"workload\": {{\"name\": \"{}\", \"footprint_bytes\": {}, \"windows\": {}}},\n",
        app.name,
        app.footprint(),
        app.windows()
    ));
    out.push_str(&format!(
        "  \"calibration\": {{\"dram_bw_gbps\": {:.6}, \"dram_lat_ns\": {:.6}, \"nvm_bw_gbps\": {:.6}, \"nvm_lat_ns\": {:.6}, \"cf_bw\": {:.6}, \"cf_lat\": {:.6}}},\n",
        cal.dram.read_bw_gbps,
        cal.dram.read_lat_ns,
        cal.nvm.read_bw_gbps,
        cal.nvm.read_lat_ns,
        cal.cf_bw,
        cal.cf_lat
    ));
    out.push_str(&tiers_json(&tier_list));
    out.push_str(&policies_json(&reports));
    out.push_str(&format!(
        "  \"consistency\": {{\"reference_checksum\": \"{reference:016x}\", \"all_policies_match_reference\": true, \"dram_throughput_ge_nvm\": true}}\n}}\n"
    ));
    json::parse(&out).map_err(|e| format!("BENCH_real.json self-check: {e}"))?;

    let path = std::path::Path::new(dir);
    std::fs::create_dir_all(path).map_err(|e| format!("create {dir}: {e}"))?;
    std::fs::write(path.join("BENCH_real.json"), &out)
        .map_err(|e| format!("write BENCH_real.json: {e}"))?;
    println!("  -> {dir}/BENCH_real.json");
    Ok(())
}

/// The 3-tier sweep behind `exp real --tiers 3`: CG on DRAM / CXL /
/// Optane. Capacities are sized off the footprint so the gathered
/// (latency-bound) `p` blocks overflow DRAM: `dram = 5/8` of the
/// p-vector bytes (two of four blocks fit), `cxl = footprint/5`
/// (holds every vector block that misses DRAM, but not a matrix
/// block), `nvm = 4×footprint` (spill).
///
/// Two self-validated demonstrations ride in the artifact:
///
/// 1. **plan** — the deterministic (calibration-free) MCK plan over the
///    preset tier specs puts at least one latency-bound object on the
///    middle tier: CXL's 85 ns beats Optane's 250 ns for the gathers,
///    while the streaming matrix reads stay on Optane (3.9 GB/s read
///    beats CXL's symmetric 2.5 GB/s).
/// 2. **modelled** — the 3-tier plan's modelled runtime beats the best
///    2-tier plan on *both* degenerate platforms (DRAM+Optane and
///    DRAM+CXL) with the same DRAM budget.
/// 3. **sweep** — growing the CXL tier through four capacities
///    (half / headline / double / quadruple) must monotonically
///    improve (never worsen) the modelled runtime: the knapsack only
///    relaxes as the middle tier grows.
///
/// The measured run then executes all four headline policies on the
/// real 3-tier arena stack and checks the usual bit-for-bit reference
/// checksums, plus that measured Tahoe actually lands objects on the
/// middle tier and migrates.
fn real_three(smoke: bool, dir: &str) -> Result<(), String> {
    use tahoe_core::measured::{
        modelled_plan, object_latency_bound, reference_checksum, MeasuredRuntime,
    };
    use tahoe_hms::presets;
    use tahoe_memprof::wallclock::WallClockConfig;
    use tahoe_obs::json;

    banner(if smoke {
        "REAL measured mode, 3 tiers (smoke): DRAM / CXL / Optane on CG"
    } else {
        "REAL measured mode, 3 tiers: DRAM / CXL / Optane on CG"
    });
    let (app, cfg, reps) = if smoke {
        (cg::app(Scale::Test), WallClockConfig::smoke(), 2)
    } else {
        (cg::app(Scale::Bench), WallClockConfig::full(), 3)
    };
    let footprint = app.footprint();
    let p_total = footprint / 20; // the four gathered p-blocks
    let dram_cap = p_total * 5 / 8;
    let cxl_cap = footprint / 5;
    let nvm_cap = 4 * footprint;
    let platform = Platform::optane_cxl(dram_cap, cxl_cap, nvm_cap);
    let tier_list = platform.tier_specs();

    // ---- deterministic modelled plan (calibration-free) -------------
    let (plan3, t3_ns) = modelled_plan(&app, &tier_list)?;
    let (_, t2_nvm_ns) = modelled_plan(&app, &Platform::optane(dram_cap, nvm_cap).tier_specs())?;
    let (_, t2_cxl_ns) = modelled_plan(&app, &[presets::dram(dram_cap), presets::cxl(nvm_cap)])?;
    // Latency- vs bandwidth-bound classification on the spill tier: the
    // tier an object must escape is the one whose roofline matters.
    let lat_bound = object_latency_bound(&app, &tier_list[2]);
    let mid_objects: Vec<usize> = plan3
        .tiers
        .iter()
        .enumerate()
        .filter(|(_, t)| **t == 1)
        .map(|(i, _)| i)
        .collect();
    let mid_lat_bound = mid_objects.iter().filter(|&&i| lat_bound[i]).count();
    println!(
        "  modelled: 3-tier {:.3} ms vs 2-tier DRAM+Optane {:.3} ms, DRAM+CXL {:.3} ms",
        t3_ns / 1e6,
        t2_nvm_ns / 1e6,
        t2_cxl_ns / 1e6
    );
    println!(
        "  plan: {} objects on CXL ({} latency-bound), {} on DRAM, {} on Optane",
        mid_objects.len(),
        mid_lat_bound,
        plan3.tiers.iter().filter(|t| **t == 0).count(),
        plan3.tiers.iter().filter(|t| **t == 2).count()
    );
    if mid_objects.is_empty() {
        return Err("3-tier plan left the middle tier empty".into());
    }
    if mid_lat_bound == 0 {
        return Err("no latency-bound object won the middle tier".into());
    }
    let eps = 1.0 + 1e-9;
    if t3_ns > t2_nvm_ns * eps {
        return Err(format!(
            "3-tier modelled runtime {t3_ns:.1} ns worse than 2-tier DRAM+Optane {t2_nvm_ns:.1} ns"
        ));
    }
    if t3_ns > t2_cxl_ns * eps {
        return Err(format!(
            "3-tier modelled runtime {t3_ns:.1} ns worse than 2-tier DRAM+CXL {t2_cxl_ns:.1} ns"
        ));
    }

    // ---- middle-tier capacity sweep (deterministic) -----------------
    // Grow the CXL tier through 4 sizes around the headline capacity.
    // More middle-tier room can only relax the knapsack, so the
    // modelled runtime must be non-increasing along the sweep — the
    // calibration-free counterpart of the paper's capacity-sensitivity
    // study, and the check that the solver actually uses the room.
    struct SweepRow {
        cxl_cap: u64,
        modelled_ns: f64,
        mid_objects: usize,
    }
    let mut sweep_rows: Vec<SweepRow> = Vec::new();
    for cap in [cxl_cap / 2, cxl_cap, 2 * cxl_cap, 4 * cxl_cap] {
        let specs = Platform::optane_cxl(dram_cap, cap, nvm_cap).tier_specs();
        let (plan, ns) = modelled_plan(&app, &specs)?;
        let mid_objects = plan.tiers.iter().filter(|t| **t == 1).count();
        if let Some(prev) = sweep_rows.last() {
            if ns > prev.modelled_ns * eps {
                return Err(format!(
                    "middle-tier sweep is not monotone: {} B -> {:.1} ns after {} B -> {:.1} ns",
                    cap, ns, prev.cxl_cap, prev.modelled_ns
                ));
            }
        }
        println!(
            "  sweep: CXL {:>10} B -> modelled {:.3} ms, {} objects on the middle tier",
            cap,
            ns / 1e6,
            mid_objects
        );
        sweep_rows.push(SweepRow {
            cxl_cap: cap,
            modelled_ns: ns,
            mid_objects,
        });
    }

    // ---- measured run on the 3-tier arena stack ---------------------
    let rt = MeasuredRuntime::new(platform, cfg);
    let cal = rt.calibrate()?;
    println!(
        "  fitted DRAM {:.2} GB/s / {:.1} ns, emulated slow tier {:.2} GB/s / {:.1} ns, cf_bw {:.3}, cf_lat {:.3}",
        cal.dram.read_bw_gbps,
        cal.dram.read_lat_ns,
        cal.nvm.read_bw_gbps,
        cal.nvm.read_lat_ns,
        cal.cf_bw,
        cal.cf_lat
    );
    let reference = reference_checksum(&app);
    let policies = [
        PolicyKind::DramOnly,
        PolicyKind::NvmOnly,
        PolicyKind::FirstTouch,
        PolicyKind::tahoe(),
    ];
    let mut reports = Vec::with_capacity(policies.len());
    for p in &policies {
        let mut best = rt.run_policy(&app, p, &cal)?;
        for _ in 1..reps {
            let r = rt.run_policy(&app, p, &cal)?;
            if r.wall_ns < best.wall_ns {
                best = r;
            }
        }
        let per_tier = best
            .final_tier_objects
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "  {:<12} {:>9.3} ms  {:>7.2} GB/s  {} migrations ({} KiB)  tiers {}",
            best.policy,
            best.wall_ns / 1e6,
            best.throughput_gbps,
            best.migrations,
            best.migrated_bytes >> 10,
            per_tier
        );
        reports.push(best);
    }

    // ---- acceptance invariants --------------------------------------
    for r in &reports {
        if r.checksum != reference {
            return Err(format!(
                "{}: checksum {:016x} != reference {reference:016x}",
                r.policy, r.checksum
            ));
        }
    }
    let find = |name: &str| {
        reports
            .iter()
            .find(|r| r.policy == name)
            .expect("policy present")
    };
    let (dram_thr, nvm_thr) = (
        find("DRAM-only").throughput_gbps,
        find("NVM-only").throughput_gbps,
    );
    if dram_thr < nvm_thr {
        return Err(format!(
            "DRAM-only throughput {dram_thr:.3} GB/s below slow-tier-only {nvm_thr:.3} GB/s"
        ));
    }
    let tahoe = find(&PolicyKind::tahoe().name());
    if tahoe.migrations == 0 {
        return Err("3-tier Tahoe performed no migrations".into());
    }
    if tahoe.final_tier_objects.len() != 3 || tahoe.final_tier_objects[1] == 0 {
        return Err(format!(
            "measured Tahoe left the middle tier empty: {:?}",
            tahoe.final_tier_objects
        ));
    }

    // ---- BENCH_real.json --------------------------------------------
    let topo = tahoe_realmem::numa::probe();
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"tahoe-bench-real/v2\",\n");
    out.push_str(&format!(
        "  \"machine\": {{\"arch\": \"{}\", \"os\": \"{}\", \"numa_nodes\": {}, \"smoke\": {}}},\n",
        std::env::consts::ARCH,
        std::env::consts::OS,
        topo.nodes,
        smoke
    ));
    out.push_str(&format!(
        "  \"workload\": {{\"name\": \"{}\", \"footprint_bytes\": {}, \"windows\": {}}},\n",
        app.name,
        footprint,
        app.windows()
    ));
    out.push_str(&format!(
        "  \"calibration\": {{\"dram_bw_gbps\": {:.6}, \"dram_lat_ns\": {:.6}, \"nvm_bw_gbps\": {:.6}, \"nvm_lat_ns\": {:.6}, \"cf_bw\": {:.6}, \"cf_lat\": {:.6}}},\n",
        cal.dram.read_bw_gbps,
        cal.dram.read_lat_ns,
        cal.nvm.read_bw_gbps,
        cal.nvm.read_lat_ns,
        cal.cf_bw,
        cal.cf_lat
    ));
    out.push_str(&tiers_json(&tier_list));
    out.push_str(&policies_json(&reports));
    out.push_str("  \"plan\": [\n");
    for (i, o) in app.objects.iter().enumerate() {
        let t = plan3.tiers[i] as usize;
        out.push_str(&format!(
            "    {{\"object\": {i}, \"name\": \"{}\", \"bytes\": {}, \"tier\": {t}, \"tier_name\": \"{}\", \"latency_bound\": {}}}{}\n",
            o.name,
            o.size,
            tier_list[t].name,
            lat_bound[i],
            if i + 1 < app.objects.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"modelled\": {{\"tahoe3_ns\": {:.6}, \"two_tier_dram_nvm_ns\": {:.6}, \"two_tier_dram_cxl_ns\": {:.6}, \"mid_tier_objects\": {}, \"mid_tier_latency_bound_objects\": {}}},\n",
        t3_ns,
        t2_nvm_ns,
        t2_cxl_ns,
        mid_objects.len(),
        mid_lat_bound
    ));
    out.push_str("  \"sweep\": [\n");
    for (i, r) in sweep_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cxl_capacity_bytes\": {}, \"modelled_ns\": {:.6}, \"mid_tier_objects\": {}}}{}\n",
            r.cxl_cap,
            r.modelled_ns,
            r.mid_objects,
            if i + 1 < sweep_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"consistency\": {{\"reference_checksum\": \"{reference:016x}\", \"all_policies_match_reference\": true, \"dram_throughput_ge_nvm\": true, \"mid_tier_wins_latency_bound\": true, \"three_tier_beats_both_two_tier\": true, \"tahoe_uses_mid_tier\": true, \"sweep_monotone\": true}}\n}}\n"
    ));
    json::parse(&out).map_err(|e| format!("BENCH_real.json self-check: {e}"))?;

    let path = std::path::Path::new(dir);
    std::fs::create_dir_all(path).map_err(|e| format!("create {dir}: {e}"))?;
    std::fs::write(path.join("BENCH_real.json"), &out)
        .map_err(|e| format!("write BENCH_real.json: {e}"))?;
    println!("  -> {dir}/BENCH_real.json");
    Ok(())
}

/// `exp par`: the parallel measured-mode experiment. Calibrates once,
/// then runs the headline policies at several worker counts with the
/// work-stealing executor and the background migration thread, checks
/// the acceptance invariants (every run's checksum equals the sequential
/// heap reference bit for bit; Tahoe at ≥2 workers reports nonzero
/// overlapped migration time whenever it migrated), and writes a
/// machine-readable `BENCH_par.json` to `dir`.
pub fn par(smoke: bool, dir: &str) -> Result<(), String> {
    use tahoe_core::measured::{reference_checksum, MeasuredRuntime};
    use tahoe_memprof::wallclock::WallClockConfig;
    use tahoe_obs::json;

    banner(if smoke {
        "PAR parallel measured mode (smoke): work-stealing + background migration"
    } else {
        "PAR parallel measured mode: work-stealing + background migration"
    });
    let (app, cfg, worker_counts): (_, _, &[usize]) = if smoke {
        (
            stream::app(Scale::Test),
            WallClockConfig::smoke(),
            &[1, 2, 4],
        )
    } else {
        (
            stream::app(Scale::Bench),
            WallClockConfig::full(),
            &[1, 2, 4, 8],
        )
    };
    let platform = platform_bw(&app, 0.25);
    let rt = MeasuredRuntime::new(platform, cfg);
    let cal = rt.calibrate()?;
    println!(
        "  fitted DRAM {:.2} GB/s / {:.1} ns, emulated NVM {:.2} GB/s / {:.1} ns, cf_bw {:.3}, cf_lat {:.3}",
        cal.dram.read_bw_gbps,
        cal.dram.read_lat_ns,
        cal.nvm.read_bw_gbps,
        cal.nvm.read_lat_ns,
        cal.cf_bw,
        cal.cf_lat
    );

    let reference = reference_checksum(&app);
    let policies = [
        PolicyKind::DramOnly,
        PolicyKind::NvmOnly,
        PolicyKind::FirstTouch,
        PolicyKind::tahoe(),
    ];

    println!(
        "  {:<12} {:>7} {:>10} {:>8} {:>10} {:>6} {:>9} {:>9}",
        "policy", "threads", "wall ms", "speedup", "GB/s", "migr", "%overlap", "gate ms"
    );
    let mut runs = Vec::new();
    for p in &policies {
        let mut base_wall = None;
        for &workers in worker_counts {
            let r = rt.run_policy_parallel(&app, p, &cal, workers, 0)?;
            if r.workers == 1 {
                base_wall = Some(r.wall_ns);
            }
            // Parallel speedup over this policy's own 1-worker run:
            // wall(1w)/wall(Nw). The compare_par gate band enforces the
            // DRAM-only scaling floor on multi-core machines.
            let speedup = base_wall.map_or(1.0, |b| b / r.wall_ns);
            println!(
                "  {:<12} {:>7} {:>10.3} {:>7.2}x {:>10.2} {:>6} {:>8.1}% {:>9.3}",
                r.policy,
                r.workers,
                r.wall_ns / 1e6,
                speedup,
                r.throughput_gbps,
                r.migration.count,
                r.migration.pct_overlap(),
                r.gate_wait_ns / 1e6
            );
            runs.push(r);
        }
    }

    // ---- acceptance invariants ------------------------------------
    for r in &runs {
        if r.checksum != reference {
            return Err(format!(
                "{} @ {} workers: checksum {:016x} != reference {reference:016x}",
                r.policy, r.workers, r.checksum
            ));
        }
    }
    let tahoe_name = PolicyKind::tahoe().name();
    let tahoe_overlapped = runs
        .iter()
        .filter(|r| r.policy == tahoe_name && r.workers >= 2 && r.migration.count > 0)
        .all(|r| r.migration.overlapped_ns > 0.0);
    if !tahoe_overlapped {
        return Err(
            "Tahoe at >=2 workers migrated but reported zero overlapped copy time".to_string(),
        );
    }
    let tahoe_migrated = runs
        .iter()
        .any(|r| r.policy == tahoe_name && r.workers >= 2 && r.migration.count > 0);
    if !tahoe_migrated {
        return Err("Tahoe at >=2 workers performed no migrations at all".to_string());
    }

    // ---- BENCH_par.json --------------------------------------------
    let topo = tahoe_realmem::numa::probe();
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"tahoe-bench-par/v1\",\n");
    // The CPU count travels with the artifact: the benchgate only holds
    // the scaling band against runs from machines that can scale.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.push_str(&format!(
        "  \"machine\": {{\"arch\": \"{}\", \"os\": \"{}\", \"numa_nodes\": {}, \"cpus\": {}, \"smoke\": {}}},\n",
        std::env::consts::ARCH,
        std::env::consts::OS,
        topo.nodes,
        cpus,
        smoke
    ));
    out.push_str(&format!(
        "  \"workload\": {{\"name\": \"{}\", \"footprint_bytes\": {}, \"windows\": {}, \"tasks\": {}}},\n",
        app.name,
        app.footprint(),
        app.windows(),
        app.graph.len()
    ));
    out.push_str(&format!(
        "  \"calibration\": {{\"dram_bw_gbps\": {:.6}, \"dram_lat_ns\": {:.6}, \"nvm_bw_gbps\": {:.6}, \"nvm_lat_ns\": {:.6}, \"cf_bw\": {:.6}, \"cf_lat\": {:.6}}},\n",
        cal.dram.read_bw_gbps,
        cal.dram.read_lat_ns,
        cal.nvm.read_bw_gbps,
        cal.nvm.read_lat_ns,
        cal.cf_bw,
        cal.cf_lat
    ));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let base = runs
            .iter()
            .find(|b| b.policy == r.policy && b.workers == 1)
            .map_or(r.wall_ns, |b| b.wall_ns);
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"workers\": {}, \"wall_ns\": {:.1}, \"speedup\": {:.6}, \"bytes_touched\": {}, \"throughput_gbps\": {:.6}, \"checksum\": \"{:016x}\", \"migrations\": {}, \"migrated_bytes\": {}, \"copy_wall_ns\": {:.1}, \"overlapped_ns\": {:.1}, \"exposed_ns\": {:.1}, \"pct_overlap\": {:.3}, \"gate_wait_ns\": {:.1}, \"steals\": {}, \"cas_retries\": {}, \"parks\": {}, \"unparks\": {}, \"final_dram_objects\": {}}}{}\n",
            r.policy,
            r.workers,
            r.wall_ns,
            base / r.wall_ns,
            r.bytes_touched,
            r.throughput_gbps,
            r.checksum,
            r.migration.count,
            r.migration.bytes,
            r.copy_wall_ns,
            r.migration.overlapped_ns,
            r.migration.exposed_ns,
            r.migration.pct_overlap(),
            r.gate_wait_ns,
            r.steals,
            r.contention.pin_cas_retries,
            r.contention.parks,
            r.contention.unparks,
            r.final_dram_objects,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"consistency\": {{\"reference_checksum\": \"{reference:016x}\", \"all_runs_match_reference\": true, \"tahoe_multiworker_overlapped\": true}}\n}}\n"
    ));
    json::parse(&out).map_err(|e| format!("BENCH_par.json self-check: {e}"))?;

    let path = std::path::Path::new(dir);
    std::fs::create_dir_all(path).map_err(|e| format!("create {dir}: {e}"))?;
    std::fs::write(path.join("BENCH_par.json"), &out)
        .map_err(|e| format!("write BENCH_par.json: {e}"))?;
    println!("  -> {dir}/BENCH_par.json");
    Ok(())
}

/// One raw `GET /metrics` over a std `TcpStream` — no curl, no client
/// crate; the same access path the CI endpoint smoke test uses.
fn scrape_metrics(addr: std::net::SocketAddr) -> Result<String, String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: bench\r\n\r\n")
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or("malformed HTTP response")?;
    if !head.lines().next().unwrap_or("").contains("200") {
        return Err(format!(
            "non-200 response: {}",
            head.lines().next().unwrap_or("")
        ));
    }
    Ok(body.to_string())
}

/// `exp blame`: the causal-profiler artifact. Runs the parallel measured
/// Tahoe policy with the flight recorder on, reconstructs the critical
/// path and the exposed-stall blame table from the merged event stream,
/// prices COZ-style what-if estimates in the CF-free model, then boots a
/// small two-tenant server and scrapes its live telemetry plane. Every
/// claim is self-validated before `BENCH_blame.json` (schema
/// `tahoe-bench-blame/v1`) is written:
///
/// * critical-path segments tile their interval exactly and land within
///   5% of the observed execution span;
/// * the blame table's aggregate `%overlap` reconciles with the
///   migration engine's own [`MigrationStats::pct_overlap`] within 1%;
/// * what-if savings agree in sign with the knapsack's predicted
///   benefits on every object the planner priced;
/// * the flight recorder dropped zero events;
/// * the telemetry scrape's completion counters equal the shutdown
///   report bit for bit (skipped gracefully where loopback sockets are
///   unavailable).
///
/// [`MigrationStats::pct_overlap`]: tahoe_hms::MigrationStats::pct_overlap
pub fn blame(smoke: bool, dir: &str) -> Result<(), String> {
    use tahoe_core::measured::{reference_checksum_seeded, MeasuredRuntime};
    use tahoe_memprof::wallclock::WallClockConfig;
    use tahoe_obs::{json, Emitter, Metrics};
    use tahoe_server::{
        ArbiterMode, QuotaPolicy, ServerConfig, TahoeServer, TelemetryConfig, TenantSpec,
    };

    banner(if smoke {
        "BLAME causal profiler (smoke): critical path + stall blame + live telemetry"
    } else {
        "BLAME causal profiler: critical path + stall blame + live telemetry"
    });
    let (app, cfg, workers) = if smoke {
        (stream::app(Scale::Test), WallClockConfig::smoke(), 2)
    } else {
        (stream::app(Scale::Bench), WallClockConfig::full(), 4)
    };
    let seed = 7u64;
    let platform = platform_bw(&app, 0.25);
    let (emitter, _buf) = Emitter::buffered();
    let rt = MeasuredRuntime::new(platform, cfg).with_observability(emitter, Metrics::enabled());
    let cal = rt.calibrate()?;
    println!(
        "  fitted DRAM {:.2} GB/s / {:.1} ns, emulated NVM {:.2} GB/s / {:.1} ns",
        cal.dram.read_bw_gbps, cal.dram.read_lat_ns, cal.nvm.read_bw_gbps, cal.nvm.read_lat_ns
    );

    let r = rt.run_policy_parallel(&app, &PolicyKind::tahoe(), &cal, workers, seed)?;
    let reference = reference_checksum_seeded(&app, seed);
    if r.checksum != reference {
        return Err(format!(
            "checksum {:016x} != reference {reference:016x}",
            r.checksum
        ));
    }
    let crit = r
        .crit
        .as_ref()
        .ok_or("observed run produced no crit digest")?;

    println!(
        "  critical path {:.3} ms = compute {:.3} + stall {:.3} + idle {:.3} ({} segments, {} tasks; span {:.3} ms, delta {:.2}%)",
        crit.crit_total_ns / 1e6,
        crit.compute_ns / 1e6,
        crit.stall_ns / 1e6,
        crit.idle_ns / 1e6,
        crit.segments,
        crit.tasks_on_path,
        crit.span_ns / 1e6,
        crit.crit_vs_span_pct
    );
    println!(
        "  {:<7} {:>5} {:>5} {:>12} {:>12} {:>12} {:>7}",
        "object", "tier", "migr", "exposed ms", "overlap ms", "gate ms", "chosen"
    );
    for e in crit.blame.iter().take(8) {
        println!(
            "  {:<7} {:>5} {:>5} {:>12.3} {:>12.3} {:>12.3} {:>7}",
            e.object,
            e.tier.tag(),
            e.migrations,
            e.exposed_ns / 1e6,
            e.overlapped_ns / 1e6,
            e.gate_wait_ns / 1e6,
            e.chosen
        );
    }

    // ---- acceptance invariants ------------------------------------
    if r.obs_ring_dropped != 0 {
        return Err(format!(
            "flight recorder dropped {} events; blame is incomplete",
            r.obs_ring_dropped
        ));
    }
    let tiling = crit.compute_ns + crit.stall_ns + crit.idle_ns;
    if (crit.crit_total_ns - tiling).abs() > 1e-6 * crit.crit_total_ns.max(1.0) {
        return Err(format!(
            "chain does not tile its interval: {} vs {} + {} + {}",
            crit.crit_total_ns, crit.compute_ns, crit.stall_ns, crit.idle_ns
        ));
    }
    if crit.crit_vs_span_pct > 5.0 {
        return Err(format!(
            "critical path {:.1} ns strayed {:.2}% from the observed span {:.1} ns (band 5%)",
            crit.crit_total_ns, crit.crit_vs_span_pct, crit.span_ns
        ));
    }
    if r.migration.count == 0 {
        return Err("the plan triggered no migrations: nothing to blame".into());
    }
    let overlap_delta = (crit.blame_pct_overlap - r.migration.pct_overlap()).abs();
    if overlap_delta > 1.0 {
        return Err(format!(
            "blame overlap {:.3}% vs engine overlap {:.3}% (band 1%)",
            crit.blame_pct_overlap,
            r.migration.pct_overlap()
        ));
    }
    let blamed_migrations: u64 = crit.blame.iter().map(|e| e.migrations).sum();
    if blamed_migrations != r.migration.count {
        return Err(format!(
            "blame table covers {blamed_migrations} migrations, engine committed {}",
            r.migration.count
        ));
    }
    let whatif_checked = crit
        .whatif
        .iter()
        .filter(|w| w.predicted_benefit_ns != 0.0)
        .count();
    let whatif_agreeing = crit
        .whatif
        .iter()
        .filter(|w| w.predicted_benefit_ns != 0.0 && w.sign_agrees)
        .count();
    if whatif_agreeing != whatif_checked {
        return Err(format!(
            "what-if sign agreement {whatif_agreeing}/{whatif_checked}: model and knapsack disagree"
        ));
    }
    for w in &crit.whatif {
        if w.whatif_wall_ns > crit.exec_wall_ns {
            return Err(format!(
                "what-if wall {} ns exceeds the measured wall {} ns",
                w.whatif_wall_ns, crit.exec_wall_ns
            ));
        }
        if w.modelled_saving_ns < 0.0 {
            return Err(format!(
                "object {}: DRAM residence cannot cost time in the model ({} ns)",
                w.object, w.modelled_saving_ns
            ));
        }
    }
    println!(
        "  reconciliation: blame overlap {:.2}% vs engine {:.2}% (delta {:.3}%), {} what-if estimates, {}/{} signs agree",
        crit.blame_pct_overlap,
        r.migration.pct_overlap(),
        overlap_delta,
        crit.whatif.len(),
        whatif_agreeing,
        whatif_checked
    );

    // ---- live telemetry plane ---------------------------------------
    // A small two-tenant server: the same counters the shutdown report
    // snapshots must be scrapeable over HTTP while the server is idle.
    let path = std::path::Path::new(dir);
    std::fs::create_dir_all(path).map_err(|e| format!("create {dir}: {e}"))?;
    let mk_tenant_app = |name: &str| {
        let mut b = AppBuilder::new(name);
        let x = b.object("x", 8 << 10);
        let y = b.object("y", 8 << 10);
        let c = b.class("step");
        b.task(c)
            .read_streaming(x, 32)
            .write_streaming(y, 32)
            .submit();
        b.task(c).update_streaming(y, 32).submit();
        b.build()
    };
    let srv = TahoeServer::new(
        ServerConfig {
            workers: 2,
            dram_budget: 24 << 10,
            nvm_capacity: 1 << 24,
            mode: ArbiterMode::Quota(QuotaPolicy::DemandProportional { floor_frac: 0.5 }),
            max_queue: 2,
        },
        cal.clone(),
        Emitter::disabled(),
        Metrics::disabled(),
    )
    .map_err(|e| format!("server boot: {e}"))?;
    let t0 = srv
        .register_tenant(TenantSpec::new("alice", 1.0), mk_tenant_app("a"))
        .map_err(|e| format!("register alice: {e}"))?;
    let t1 = srv
        .register_tenant(TenantSpec::new("bob", 1.0), mk_tenant_app("b"))
        .map_err(|e| format!("register bob: {e}"))?;
    let tele = srv
        .serve_telemetry(TelemetryConfig {
            journal: Some(path.join("telemetry.jsonl")),
            ..TelemetryConfig::default()
        })
        .ok();
    let (o0, o1) = (
        t0.submit(7).ticket().ok_or("alice shed")?.wait(),
        t1.submit(9).ticket().ok_or("bob shed")?.wait(),
    );
    if o0.checksum != reference_checksum_seeded(&mk_tenant_app("a"), 7)
        || o1.checksum != reference_checksum_seeded(&mk_tenant_app("b"), 9)
    {
        return Err("tenant checksum diverged from its solo reference".into());
    }
    let scrape = tele.as_ref().map(|h| scrape_metrics(h.addr()));
    let telemetry_served = scrape.as_ref().is_some_and(|s| s.is_ok());
    let scraped_body = match scrape {
        Some(Ok(body)) => body,
        Some(Err(e)) => {
            println!("  telemetry scrape unavailable ({e}); recording served=false");
            String::new()
        }
        None => {
            println!("  telemetry endpoint could not bind; recording served=false");
            String::new()
        }
    };
    if let Some(h) = tele {
        h.stop();
    }
    let sreport = srv.shutdown();
    let blame_lines = scraped_body
        .lines()
        .filter(|l| l.starts_with("tahoe_blame_"))
        .count();
    let scrape_matches = telemetry_served;
    if telemetry_served {
        // Bit-for-bit: the scraped integer strings must equal the
        // shutdown report's counters.
        for t in &sreport.tenants {
            for (family, want) in [
                ("tahoe_tenant_submitted_total", t.submitted),
                ("tahoe_tenant_completed_total", t.completed),
                ("tahoe_tenant_shed_total", t.shed),
            ] {
                let needle = format!(
                    "{family}{{tenant=\"{}\",name=\"{}\"}} {want}",
                    t.tenant, t.name
                );
                if !scraped_body.lines().any(|l| l == needle) {
                    return Err(format!("scrape missing exact sample `{needle}`"));
                }
            }
        }
        println!(
            "  telemetry: scrape matches the shutdown report on {} tenants; {blame_lines} blame samples",
            sreport.tenants.len()
        );
    }

    // ---- BENCH_blame.json -------------------------------------------
    let topo = tahoe_realmem::numa::probe();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"tahoe-bench-blame/v1\",\n");
    out.push_str(&format!(
        "  \"machine\": {{\"arch\": \"{}\", \"os\": \"{}\", \"numa_nodes\": {}, \"cpus\": {}, \"smoke\": {}}},\n",
        std::env::consts::ARCH,
        std::env::consts::OS,
        topo.nodes,
        cpus,
        smoke
    ));
    out.push_str(&format!(
        "  \"workload\": {{\"name\": \"{}\", \"footprint_bytes\": {}, \"windows\": {}, \"tasks\": {}}},\n",
        app.name,
        app.footprint(),
        app.windows(),
        app.graph.len()
    ));
    out.push_str(&format!(
        "  \"calibration\": {{\"dram_bw_gbps\": {:.6}, \"dram_lat_ns\": {:.6}, \"nvm_bw_gbps\": {:.6}, \"nvm_lat_ns\": {:.6}, \"cf_bw\": {:.6}, \"cf_lat\": {:.6}}},\n",
        cal.dram.read_bw_gbps,
        cal.dram.read_lat_ns,
        cal.nvm.read_bw_gbps,
        cal.nvm.read_lat_ns,
        cal.cf_bw,
        cal.cf_lat
    ));
    out.push_str(&format!(
        "  \"run\": {{\"policy\": \"{}\", \"workers\": {}, \"seed\": {seed}, \"wall_ns\": {:.1}, \"checksum\": \"{:016x}\", \"migrations\": {}, \"migrated_bytes\": {}, \"pct_overlap\": {:.6}, \"gate_wait_ns\": {:.1}, \"ring_dropped\": {}}},\n",
        r.policy,
        r.workers,
        r.wall_ns,
        r.checksum,
        r.migration.count,
        r.migration.bytes,
        r.migration.pct_overlap(),
        r.gate_wait_ns,
        r.obs_ring_dropped
    ));
    out.push_str(&format!(
        "  \"critpath\": {{\"crit_total_ns\": {:.1}, \"span_ns\": {:.1}, \"exec_wall_ns\": {:.1}, \"compute_ns\": {:.1}, \"stall_ns\": {:.1}, \"idle_ns\": {:.1}, \"segments\": {}, \"tasks_on_path\": {}, \"crit_vs_span_pct\": {:.6}}},\n",
        crit.crit_total_ns,
        crit.span_ns,
        crit.exec_wall_ns,
        crit.compute_ns,
        crit.stall_ns,
        crit.idle_ns,
        crit.segments,
        crit.tasks_on_path,
        crit.crit_vs_span_pct
    ));
    out.push_str("  \"blame\": [\n");
    for (i, e) in crit.blame.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"object\": {}, \"tier\": \"{}\", \"migrations\": {}, \"bytes\": {}, \"overlapped_ns\": {:.1}, \"exposed_ns\": {:.1}, \"gate_wait_ns\": {:.1}, \"chosen\": {}, \"predicted_benefit_ns\": {:.1}}}{}\n",
            e.object,
            e.tier.tag(),
            e.migrations,
            e.bytes,
            e.overlapped_ns,
            e.exposed_ns,
            e.gate_wait_ns,
            e.chosen,
            e.predicted_benefit_ns,
            if i + 1 < crit.blame.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"reconciliation\": {{\"blame_pct_overlap\": {:.6}, \"engine_pct_overlap\": {:.6}, \"delta_pct\": {:.6}, \"blamed_migrations\": {blamed_migrations}, \"engine_migrations\": {}, \"unattributed_wait_ns\": {:.1}}},\n",
        crit.blame_pct_overlap,
        r.migration.pct_overlap(),
        overlap_delta,
        r.migration.count,
        crit.unattributed_wait_ns
    ));
    out.push_str("  \"whatif\": [\n");
    for (i, w) in crit.whatif.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"object\": {}, \"exposed_ns\": {:.1}, \"whatif_wall_ns\": {:.1}, \"modelled_saving_ns\": {:.1}, \"predicted_benefit_ns\": {:.1}, \"sign_agrees\": {}}}{}\n",
            w.object,
            w.exposed_ns,
            w.whatif_wall_ns,
            w.modelled_saving_ns,
            w.predicted_benefit_ns,
            w.sign_agrees,
            if i + 1 < crit.whatif.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"telemetry\": {{\"served\": {telemetry_served}, \"scrape_matches_report\": {scrape_matches}, \"tenants\": {}, \"completed_total\": {}, \"blame_samples\": {blame_lines}}},\n",
        sreport.tenants.len(),
        sreport.completed_total()
    ));
    out.push_str(&format!(
        "  \"consistency\": {{\"checksum_matches_reference\": true, \"crit_band_pct\": 5.0, \"overlap_band_pct\": 1.0, \"blame_covers_all_migrations\": true, \"whatif_checked\": {whatif_checked}, \"whatif_agreeing\": {whatif_agreeing}, \"ring_dropped\": {}}}\n}}\n",
        r.obs_ring_dropped
    ));
    json::parse(&out).map_err(|e| format!("BENCH_blame.json self-check: {e}"))?;

    std::fs::write(path.join("BENCH_blame.json"), &out)
        .map_err(|e| format!("write BENCH_blame.json: {e}"))?;
    println!("  -> {dir}/BENCH_blame.json");
    Ok(())
}

/// Exact-count check: every violation kind in `rep` must carry exactly
/// the expected count (kinds absent from `expected` must be zero).
fn sanitize_counts_match(
    rep: &tahoe_core::SanitizeReport,
    expected: &[(&'static str, u64)],
) -> bool {
    rep.by_kind().iter().all(|(tag, n)| {
        let want = expected
            .iter()
            .find(|(t, _)| t == tag)
            .map_or(0, |(_, c)| *c);
        *n == want
    })
}

/// `exp sanitize`: the task-graph race detector + access sanitizer with
/// schedule fuzzing. Three passes:
///
/// 1. **Static** — the graph verifier must find nothing wrong with any
///    real workload's declared DAG, and the plan auditor must find the
///    solver's own migration plan sound for each graph (the two-tenant
///    interleave included).
/// 2. **Fuzz** — correct workloads execute in sanitize mode across
///    worker counts × seeds; every run must report *zero* violations
///    and still reproduce the sequential reference checksum.
/// 3. **Fixtures** — the committed buggy workloads must produce their
///    *exact* expected violation sets, identically at every allowed
///    worker count and seed (schedule independence).
///
/// Any deviation is an error; the summary lands in
/// `BENCH_sanitize.json`, gated by `benchgate` with exact equality.
pub fn sanitize(smoke: bool, dir: &str) -> Result<(), String> {
    use tahoe_core::measured::{reference_checksum_seeded, MeasuredRuntime};
    use tahoe_core::SanitizeReport;
    use tahoe_memprof::wallclock::WallClockConfig;
    use tahoe_obs::json;
    use tahoe_sanitize::{verify_graph, StaticContext};
    use tahoe_workloads::fixtures::all_fixtures;

    banner(if smoke {
        "SANITIZE race detector + access sanitizer (smoke): fuzz + fixtures"
    } else {
        "SANITIZE race detector + access sanitizer: fuzz + fixtures"
    });
    let mk_cfg = || {
        if smoke {
            WallClockConfig::smoke()
        } else {
            WallClockConfig::full()
        }
    };
    let static_ctx = |app: &App| {
        let plat = platform_bw(app, 0.25);
        StaticContext::new(
            app.objects.iter().map(|o| o.size).collect(),
            plat.dram.capacity,
            plat.nvm.capacity,
        )
    };

    // Two-tenant interleaving: the server's cross-tenant composition as
    // one ordinary graph, so the schedule fuzz covers tasks of
    // different tenants sharing windows (and workers) on disjoint
    // objects — a window barrier leaking across tenants or a dependence
    // miscounted between interleaved tasks shows up as a violation.
    let two_tenant = {
        let (a, b) = if smoke {
            (stream::app(Scale::Test), stream::app(Scale::Test))
        } else {
            (stream::app(Scale::Test), cg::app(Scale::Test))
        };
        tahoe_server::interleave(&[(&a, "t0"), (&b, "t1")])
    };

    // ---- pass 1: static graph verification + plan audit -------------
    // The static pass is two verifiers deep: the graph checker, and the
    // plan auditor over the solver's own migration plan for the same
    // platform — including the cross-tenant interleave, where a move
    // scheduled against one tenant's windows could race the other's.
    let mut static_verified = 0u64;
    let mut plans_audited = 0u64;
    for app in all_workloads(Scale::Test)
        .iter()
        .chain(std::iter::once(&two_tenant))
    {
        let rep = verify_graph(&app.graph, &static_ctx(app));
        if !rep.is_clean() {
            return Err(format!(
                "static verifier flagged correct workload {}: {:?}",
                app.name, rep.violations
            ));
        }
        static_verified += 1;
        audit_solver_plan(app, &platform_bw(app, 0.25).tier_specs())?;
        plans_audited += 1;
    }
    println!(
        "  static: {static_verified} workload graphs verified clean, {plans_audited} solver plans audited sound"
    );

    // ---- pass 2: schedule fuzz over correct workloads ----------------
    let apps: Vec<App> = if smoke {
        vec![stream::app(Scale::Test), two_tenant]
    } else {
        vec![stream::app(Scale::Bench), cg::app(Scale::Test), two_tenant]
    };
    // CI's stress-fuzz job widens the schedule matrix (8 workers, more
    // seeds) through these env overrides without a separate code path.
    let worker_counts: Vec<usize> = env_list("SANITIZE_FUZZ_WORKERS", &[1, 2, 4])?;
    let seeds: Vec<u64> = env_list("SANITIZE_FUZZ_SEEDS", &[0, 1, 2])?;
    let (worker_counts, seeds) = (&worker_counts[..], &seeds[..]);
    let mut fuzz_runs = 0u64;
    let mut accesses_checked = 0u64;
    for app in &apps {
        let rt = MeasuredRuntime::new(platform_bw(app, 0.25), mk_cfg());
        let cal = rt.calibrate()?;
        for &workers in worker_counts {
            for &seed in seeds {
                let (rep, san) =
                    rt.run_policy_sanitized(app, &PolicyKind::tahoe(), &cal, workers, seed, &[])?;
                if !san.is_clean() {
                    return Err(format!(
                        "{} @ {workers} workers seed {seed}: sanitizer flagged a correct workload: {:?}",
                        app.name, san.violations
                    ));
                }
                let want = reference_checksum_seeded(app, seed);
                if rep.checksum != want {
                    return Err(format!(
                        "{} @ {workers} workers seed {seed}: checksum {:016x} != reference {want:016x} under sanitize mode",
                        app.name, rep.checksum
                    ));
                }
                fuzz_runs += 1;
                accesses_checked += san.accesses_checked;
            }
        }
        println!(
            "  fuzz: {:<10} clean across {:?} workers x {:?} seeds",
            app.name, worker_counts, seeds
        );
    }

    // ---- pass 3: committed buggy fixtures ----------------------------
    struct FixtureRow {
        name: &'static str,
        runs: u64,
        static_match: bool,
        dynamic_match: bool,
        by_kind: Vec<(&'static str, u64)>,
    }
    let fixture_seeds: &[u64] = &[0, 1];
    let mut rows = Vec::new();
    for f in all_fixtures() {
        let srep = verify_graph(&f.app.graph, &static_ctx(&f.app));
        let static_match = sanitize_counts_match(&srep, &f.expected_static);
        let rt = MeasuredRuntime::new(platform_bw(&f.app, 0.25), mk_cfg());
        let cal = rt.calibrate()?;
        let allowed: Vec<usize> = worker_counts
            .iter()
            .copied()
            .filter(|w| *w <= f.max_workers)
            .collect();
        let mut dynamic_match = true;
        let mut first: Option<SanitizeReport> = None;
        let mut runs = 0u64;
        for &workers in &allowed {
            for &seed in fixture_seeds {
                let (_, san) = rt.run_policy_sanitized(
                    &f.app,
                    &PolicyKind::DramOnly,
                    &cal,
                    workers,
                    seed,
                    &f.extra,
                )?;
                if !sanitize_counts_match(&san, &f.expected_dynamic) {
                    dynamic_match = false;
                }
                match &first {
                    None => first = Some(san),
                    // Schedule independence: byte-identical reports at
                    // every worker count and seed.
                    Some(prev) if *prev != san => dynamic_match = false,
                    Some(_) => {}
                }
                runs += 1;
            }
        }
        let rep = first.ok_or_else(|| format!("fixture {} never ran", f.name))?;
        println!(
            "  fixture: {:<20} {} runs, static {}, dynamic {} ({} violations)",
            f.name,
            runs,
            if static_match { "ok" } else { "MISMATCH" },
            if dynamic_match { "ok" } else { "MISMATCH" },
            rep.violations.len() + srep.violations.len()
        );
        if !static_match || !dynamic_match {
            return Err(format!(
                "fixture {} deviated from its expected violation set: static {:?}, dynamic {:?}",
                f.name, srep.violations, rep.violations
            ));
        }
        let mut by_kind = srep.by_kind();
        for (i, (_, n)) in rep.by_kind().into_iter().enumerate() {
            by_kind[i].1 += n;
        }
        rows.push(FixtureRow {
            name: f.name,
            runs,
            static_match,
            dynamic_match,
            by_kind,
        });
    }

    // ---- BENCH_sanitize.json -----------------------------------------
    let topo = tahoe_realmem::numa::probe();
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"tahoe-bench-sanitize/v1\",\n");
    out.push_str(&format!(
        "  \"machine\": {{\"arch\": \"{}\", \"os\": \"{}\", \"numa_nodes\": {}, \"smoke\": {}}},\n",
        std::env::consts::ARCH,
        std::env::consts::OS,
        topo.nodes,
        smoke
    ));
    out.push_str(&format!(
        "  \"static\": {{\"workloads_verified\": {static_verified}, \"plans_audited\": {plans_audited}, \"clean\": true}},\n"
    ));
    let fmt_list = |v: &[u64]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    out.push_str(&format!(
        "  \"fuzz\": {{\"workloads\": {}, \"workers\": [{}], \"seeds\": [{}], \"runs\": {fuzz_runs}, \"accesses_checked\": {accesses_checked}, \"clean\": true}},\n",
        apps.len(),
        fmt_list(&worker_counts.iter().map(|w| *w as u64).collect::<Vec<_>>()),
        fmt_list(seeds)
    ));
    out.push_str("  \"fixtures\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"runs\": {}, \"static_match\": {}, \"dynamic_match\": {}, \"violations\": {{",
            r.name, r.runs, r.static_match, r.dynamic_match
        ));
        for (j, (tag, n)) in r.by_kind.iter().enumerate() {
            out.push_str(&format!("{}\"{tag}\": {n}", if j > 0 { ", " } else { "" }));
        }
        out.push_str(&format!(
            "}}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"consistency\": {\"correct_workloads_clean\": true, \"fixtures_exact\": true}\n}\n",
    );
    json::parse(&out).map_err(|e| format!("BENCH_sanitize.json self-check: {e}"))?;

    let path = std::path::Path::new(dir);
    std::fs::create_dir_all(path).map_err(|e| format!("create {dir}: {e}"))?;
    std::fs::write(path.join("BENCH_sanitize.json"), &out)
        .map_err(|e| format!("write BENCH_sanitize.json: {e}"))?;
    println!(
        "  {} fuzz runs clean ({} accesses shadowed), {} fixtures exact -> {dir}/BENCH_sanitize.json",
        fuzz_runs,
        accesses_checked,
        rows.len()
    );
    Ok(())
}

/// The migration plan a solver assignment implies under the Tahoe
/// convention: every object starts on the slowest (spill) tier and is
/// promoted to its assigned tier at the same profile-window boundary
/// `run_policy*` migrates at.
fn assignment_plan(app: &App, tiers: &[u8], n_tiers: usize) -> tahoe_core::MigrationPlan {
    let last = (n_tiers - 1) as u8;
    let boundary = app.windows().saturating_sub(1).min(2);
    tahoe_core::MigrationPlan {
        initial_tiers: vec![last; app.objects.len()],
        steps: tiers
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != last)
            .map(|(i, &t)| tahoe_core::PlanStep {
                object: i as u32,
                to_tier: t,
                window: boundary,
            })
            .collect(),
    }
}

/// Solve the placement over `specs` and run the static plan auditor on
/// the implied migration plan; errs if the auditor flags anything.
/// Returns the number of migration steps the audited plan carries.
fn audit_solver_plan(app: &App, specs: &[tahoe_hms::TierSpec]) -> Result<u64, String> {
    use tahoe_core::measured::modelled_plan;
    let (assignment, _) = modelled_plan(app, specs)?;
    let plan = assignment_plan(app, &assignment.tiers, specs.len());
    let ctx = tahoe_core::PlanContext::new(app.objects.iter().map(|o| o.size).collect());
    let rep = tahoe_core::audit_plan(&app.graph, &plan, specs, &ctx);
    if !rep.is_clean() {
        return Err(format!(
            "{} ({} tiers): solver-produced plan failed its own audit: {:?}",
            app.name,
            specs.len(),
            rep.violations
        ));
    }
    Ok(plan.steps.len() as u64)
}

/// `exp verify`: the static plan-soundness auditor and the lock-free
/// pin/move protocol model checker, as one self-validated artifact.
/// Four passes:
///
/// 1. **Plans** — every workload's solver-produced migration plan (the
///    multiple-choice knapsack over preset 2- and 3-tier platforms)
///    must audit clean: per-prefix tier capacity, schedule-universal
///    move safety, target validity, object liveness, no double moves,
///    and modelled-cost non-regression. Pure model, no calibration —
///    the counts are identical on every machine.
/// 2. **Preflight** — [`MeasuredRuntime::verify_plan`] (the same audit
///    `run_policy`/`run_policy_parallel` enforce before executing
///    anything) must pass for every headline policy over the real
///    allocator's placements.
/// 3. **Fixtures** — the committed buggy plans must reproduce their
///    *exact* expected diagnostic sets, nothing more, nothing less.
/// 4. **Mcheck** — the bounded exhaustive interleaving checker
///    certifies the pin/move word protocol clean at *pinned*
///    explored-state counts, and each of the four injected protocol
///    bugs (dropped wakes, unannounced park, pin through MOVING) is
///    caught.
///
/// The summary lands in `BENCH_verify.json`
/// (`tahoe-bench-verify/v1`), gated by `benchgate` with exact equality.
pub fn verify(smoke: bool, dir: &str) -> Result<(), String> {
    use tahoe_core::measured::MeasuredRuntime;
    use tahoe_memprof::wallclock::WallClockConfig;
    use tahoe_obs::json;
    use tahoe_sanitize::mcheck::{certify, check};
    use tahoe_sanitize::McheckConfig;
    use tahoe_workloads::fixtures::all_plan_fixtures;

    banner(if smoke {
        "VERIFY plan auditor + protocol model checker (smoke)"
    } else {
        "VERIFY plan auditor + protocol model checker"
    });

    // ---- pass 1: solver plans audit clean ---------------------------
    let apps = all_workloads(Scale::Test);
    let mut plans_audited = 0u64;
    let mut steps_total = 0u64;
    for app in &apps {
        let fp = app.footprint();
        let two = Platform::optane(dram_budget(app), 4 * fp).tier_specs();
        let three = Platform::optane_cxl(dram_budget(app), fp / 2, 4 * fp).tier_specs();
        for specs in [&two, &three] {
            steps_total += audit_solver_plan(app, specs)?;
            plans_audited += 1;
        }
    }
    println!(
        "  plans: {plans_audited} solver plans over {} workloads audited sound ({steps_total} migration steps)",
        apps.len()
    );

    // ---- pass 2: measured-run preflight ------------------------------
    let preflight_apps: Vec<App> = if smoke {
        vec![stream::app(Scale::Test), cg::app(Scale::Test)]
    } else {
        all_workloads(Scale::Test)
    };
    let policies = [
        PolicyKind::DramOnly,
        PolicyKind::NvmOnly,
        PolicyKind::FirstTouch,
        PolicyKind::tahoe(),
    ];
    let mut preflight_runs = 0u64;
    for app in &preflight_apps {
        let cfg = if smoke {
            WallClockConfig::smoke()
        } else {
            WallClockConfig::full()
        };
        let rt = MeasuredRuntime::new(platform_bw(app, 0.25), cfg);
        let cal = rt.calibrate()?;
        for p in &policies {
            let rep = rt.verify_plan(app, p, &cal)?;
            if !rep.is_clean() {
                return Err(format!(
                    "{} under {}: preflight audit flagged the runtime's own plan: {:?}",
                    app.name,
                    p.name(),
                    rep.violations
                ));
            }
            preflight_runs += 1;
        }
    }
    println!(
        "  preflight: {preflight_runs} policy plans over {} workloads verified clean",
        preflight_apps.len()
    );

    // ---- pass 3: committed buggy-plan fixtures -----------------------
    struct FixtureRow {
        name: &'static str,
        by_kind: Vec<(&'static str, u64)>,
    }
    let mut rows = Vec::new();
    for f in all_plan_fixtures() {
        let rep = tahoe_core::audit_plan(&f.app.graph, &f.plan, &f.specs, &f.context());
        let got: Vec<(&'static str, u64)> =
            rep.by_kind().into_iter().filter(|&(_, n)| n > 0).collect();
        println!(
            "  fixture: {:<26} {} violation(s), {}",
            f.name,
            rep.violations.len(),
            if got == f.expected_audit {
                "exact"
            } else {
                "MISMATCH"
            }
        );
        if got != f.expected_audit {
            return Err(format!(
                "plan fixture {} deviated from its expected diagnostic set: want {:?}, got {:?}",
                f.name, f.expected_audit, rep.violations
            ));
        }
        rows.push(FixtureRow {
            name: f.name,
            by_kind: rep.by_kind(),
        });
    }

    // ---- pass 4: protocol model checker ------------------------------
    let sweep = certify();
    for r in &sweep {
        if !r.ok() {
            return Err(format!(
                "protocol certification failed at {} pinners: {:?} ({} deadlocks)",
                r.config.pinners, r.violations, r.deadlocks
            ));
        }
        println!(
            "  mcheck: {} pinners x {} moves certified clean — {} states, {} transitions",
            r.config.pinners, r.config.moves, r.states, r.transitions
        );
    }
    // Negative controls: each seeded protocol bug must be caught, or
    // the checker's clean verdicts above mean nothing.
    let bug_configs: Vec<(&str, McheckConfig)> = {
        let base = McheckConfig::new(2, 1, 1);
        let with = |f: fn(&mut McheckConfig)| {
            let mut c = base;
            f(&mut c);
            c
        };
        vec![
            ("skip_unpin_wake", with(|c| c.bugs.skip_unpin_wake = true)),
            (
                "skip_release_wake",
                with(|c| c.bugs.skip_release_wake = true),
            ),
            ("skip_parked_bit", with(|c| c.bugs.skip_parked_bit = true)),
            (
                "pin_ignores_moving",
                with(|c| c.bugs.pin_ignores_moving = true),
            ),
        ]
    };
    let bugs_injected = bug_configs.len() as u64;
    let mut bugs_caught = 0u64;
    for (name, cfg) in &bug_configs {
        let r = check(*cfg);
        if r.ok() {
            return Err(format!(
                "injected protocol bug `{name}` escaped the model checker"
            ));
        }
        bugs_caught += 1;
    }
    println!("  mcheck: {bugs_caught}/{bugs_injected} injected protocol bugs caught");

    // ---- BENCH_verify.json -------------------------------------------
    let topo = tahoe_realmem::numa::probe();
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"tahoe-bench-verify/v1\",\n");
    out.push_str(&format!(
        "  \"machine\": {{\"arch\": \"{}\", \"os\": \"{}\", \"numa_nodes\": {}, \"smoke\": {}}},\n",
        std::env::consts::ARCH,
        std::env::consts::OS,
        topo.nodes,
        smoke
    ));
    out.push_str(&format!(
        "  \"plans\": {{\"workloads\": {}, \"tier_depths\": [2, 3], \"audited\": {plans_audited}, \"steps_total\": {steps_total}, \"clean\": true}},\n",
        apps.len()
    ));
    out.push_str(&format!(
        "  \"preflight\": {{\"workloads\": {}, \"policies\": {}, \"runs\": {preflight_runs}, \"clean\": true}},\n",
        preflight_apps.len(),
        policies.len()
    ));
    out.push_str("  \"fixtures\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"violations\": {{",
            r.name
        ));
        for (j, (tag, n)) in r.by_kind.iter().enumerate() {
            out.push_str(&format!("{}\"{tag}\": {n}", if j > 0 { ", " } else { "" }));
        }
        out.push_str(&format!(
            "}}, \"exact\": true}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"mcheck\": {\"configs\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pinners\": {}, \"pin_cycles\": {}, \"moves\": {}, \"states\": {}, \"transitions\": {}, \"terminals\": {}, \"deadlocks\": {}}}{}\n",
            r.config.pinners,
            r.config.pin_cycles,
            r.config.moves,
            r.states,
            r.transitions,
            r.terminals,
            r.deadlocks,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ], \"bugs_injected\": {bugs_injected}, \"bugs_caught\": {bugs_caught}, \"clean\": true}},\n"
    ));
    out.push_str(
        "  \"consistency\": {\"solver_plans_clean\": true, \"preflight_clean\": true, \"fixtures_exact\": true, \"protocol_certified\": true, \"bugs_all_caught\": true}\n}\n",
    );
    json::parse(&out).map_err(|e| format!("BENCH_verify.json self-check: {e}"))?;

    let path = std::path::Path::new(dir);
    std::fs::create_dir_all(path).map_err(|e| format!("create {dir}: {e}"))?;
    std::fs::write(path.join("BENCH_verify.json"), &out)
        .map_err(|e| format!("write BENCH_verify.json: {e}"))?;
    println!(
        "  {plans_audited} plans + {preflight_runs} preflights clean, {} fixtures exact, protocol certified -> {dir}/BENCH_verify.json",
        rows.len()
    );
    Ok(())
}

/// Geometry of the multi-tenant fairness bench: every tenant runs the
/// same app shape, so solo references and cross-tenant comparisons are
/// apples-to-apples.
struct TenantGeometry {
    /// Hot objects per tenant (each updated in full by every task).
    pieces: u32,
    /// Size of each hot object.
    piece_bytes: u64,
    windows: u32,
    tasks_per_window: u32,
    /// Pure compute per task, microseconds (spin-paced). Sized so a
    /// graph's compute is about twice its full-NVM inject: memory
    /// placement decides the latency spread, while the compute floor
    /// keeps free-for-all's cheap winner graphs from inflating its
    /// aggregate throughput.
    compute_us: f64,
    /// Closed-loop window, milliseconds (time-bounded so fast tenants
    /// never exit early and relieve the losers).
    run_ms: u64,
    /// Solo graphs the cold tenant runs before the actives join.
    warmup_graphs: usize,
    /// Open-loop burst length for the admission-control phase.
    burst: usize,
}

impl TenantGeometry {
    fn new(smoke: bool) -> Self {
        if smoke {
            Self {
                pieces: 4,
                piece_bytes: 256 << 10,
                windows: 3,
                tasks_per_window: 2,
                compute_us: 1900.0,
                run_ms: 300,
                warmup_graphs: 2,
                burst: 6,
            }
        } else {
            Self {
                pieces: 4,
                piece_bytes: 256 << 10,
                windows: 4,
                tasks_per_window: 3,
                compute_us: 1900.0,
                run_ms: 700,
                warmup_graphs: 2,
                burst: 6,
            }
        }
    }

    /// One tenant's hot-set size.
    fn hot_bytes(&self) -> u64 {
        self.pieces as u64 * self.piece_bytes
    }

    /// Global DRAM budget: half the combined active hot sets (4 active
    /// tenants, budget = 2 hot sets) plus a little allocator slack —
    /// enough that the quota arbiter gives every active tenant half its
    /// pieces, while free-for-all lets two tenants take everything.
    fn dram_budget(&self) -> u64 {
        2 * self.hot_bytes() + 2048
    }

    /// The per-tenant app: `pieces` equally-hot objects, every task
    /// streams an update over all of them plus a compute phase.
    fn app(&self, name: &str) -> App {
        let mut b = AppBuilder::new(name);
        let ids: Vec<ObjectId> = (0..self.pieces)
            .map(|i| b.object(&format!("hot{i}"), self.piece_bytes))
            .collect();
        let c = b.class("work");
        let lines = self.piece_bytes / 64;
        for w in 0..self.windows {
            if w > 0 {
                b.next_window();
            }
            for _ in 0..self.tasks_per_window {
                let mut tb = b.task(c).compute_us(self.compute_us);
                for id in &ids {
                    tb = tb.update_streaming(*id, lines);
                }
                tb.submit();
            }
        }
        b.build()
    }
}

/// Nearest-rank percentile over an already-sorted sample.
fn pctile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Per-tenant digest of one arbitration mode's run.
struct TenantRow {
    tenant: u32,
    name: String,
    role: &'static str,
    graphs: u64,
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    preempted: u64,
    shed: u64,
    quota_bytes: u64,
    promoted_bytes: u64,
    demoted_bytes: u64,
}

/// Whole-mode digest: aggregate throughput, fairness, and per-tenant rows.
struct TenantModeStats {
    mode: &'static str,
    wall_ms: f64,
    aggregate_gps: f64,
    jain: f64,
    worst_p99_ms: f64,
    preempted: u64,
    shed: u64,
    checksums_ok: bool,
}

/// Run one arbitration mode end-to-end: a cold tenant warms up solo
/// (promoting its whole hot set), four active tenants then drive the
/// server closed-loop at saturation, and — in quota mode — one tenant
/// bursts past the queue bound so admission control sheds.
fn tenant_mode(
    mode_name: &'static str,
    mode: tahoe_server::ArbiterMode,
    geo: &TenantGeometry,
    base_seed: u64,
) -> Result<(TenantModeStats, Vec<TenantRow>), String> {
    use tahoe_core::measured::reference_checksum_seeded;
    use tahoe_hms::TierSpec;
    use tahoe_memprof::wallclock::{MeasuredTier, WallClockCalibration};
    use tahoe_obs::{Emitter, Metrics};
    use tahoe_server::{driver, jain, ServerConfig, TahoeServer, TenantSpec};

    // Synthetic calibration — machine-independent and strongly
    // NVM-bound: DRAM 10 GB/s / 100 ns, NVM 0.25 GB/s / 500 ns, so a
    // full hot-set update on NVM injects ~40x the DRAM memory time and
    // the placement decision, not scheduler noise, sets the latency
    // spread between the modes: the structural p99 gap must dwarf the
    // multi-ms OS scheduling jitter of a loaded CI box.
    let cal = WallClockCalibration {
        dram: TierSpec::symmetric("dram", 100.0, 10.0, 1 << 20),
        nvm: TierSpec::symmetric("nvm", 500.0, 0.25, 1 << 26),
        cf_bw: 1.0,
        cf_lat: 1.0,
        measured: MeasuredTier {
            stream_bw_gbps: 10.0,
            chase_lat_ns: 100.0,
            stream_wall_ns: 1000.0,
            chase_wall_ns: 1000.0,
        },
    };
    let srv = TahoeServer::new(
        ServerConfig {
            workers: 2,
            dram_budget: geo.dram_budget(),
            nvm_capacity: 1 << 26,
            mode,
            max_queue: 2,
        },
        cal,
        Emitter::disabled(),
        Metrics::disabled(),
    )?;

    // Tenant 0 is the cold tenant; 1..=4 are the active fleet.
    let names: Vec<String> = std::iter::once("cold".to_string())
        .chain((1..=4).map(|i| format!("t{i}")))
        .collect();
    let handles: Vec<_> = names
        .iter()
        .map(|n| {
            srv.register_tenant(TenantSpec::new(n, 1.0), geo.app(n))
                .map_err(|e| format!("register {n}: {e}"))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let refs: Vec<u64> = handles
        .iter()
        .enumerate()
        .map(|(i, h)| {
            reference_checksum_seeded(
                &geo.app(&names[i]),
                driver::tenant_seed(base_seed, h.tenant()),
            )
        })
        .collect();

    // Phase 1: the cold tenant runs alone and wins the whole budget.
    let cold_out = driver::warmup(&handles[0], geo.warmup_graphs, base_seed);

    // Phase 2: saturating closed loop across the four active tenants,
    // pipelined two-deep (every tenant stays busy-or-queued, so the
    // arbiter sees a stable active set) and time-bounded (fast tenants
    // keep submitting instead of finishing early and handing the
    // losers an uncontended tail).
    let actives: Vec<&_> = handles[1..].iter().collect();
    let t0 = std::time::Instant::now();
    let outcomes = driver::closed_loop_timed(
        &actives,
        std::time::Duration::from_millis(geo.run_ms),
        2,
        base_seed,
    );
    let wall_ns = t0.elapsed().as_nanos() as f64;

    // Phase 3 (quota mode only): open-loop burst past the queue bound.
    let burst_out = if geo.burst > 0 && mode_name == "quota" {
        let seed = driver::tenant_seed(base_seed, handles[1].tenant());
        Some(driver::burst(&handles[1], geo.burst, seed))
    } else {
        None
    };

    let report = srv.shutdown();

    // Validate every checksum against its tenant's solo reference.
    let mut checksums_ok = true;
    for o in cold_out
        .iter()
        .chain(outcomes.iter())
        .chain(burst_out.iter().flat_map(|(v, _)| v.iter()))
    {
        if o.checksum != refs[o.tenant as usize] {
            checksums_ok = false;
        }
    }

    // Per-active-tenant latency samples from the contended phase only
    // (exact values; the per-tenant histogram digests in the report
    // stay available for observability).
    let mut rows = Vec::new();
    let mut rates = Vec::new();
    let mut worst_p99_ms = 0.0f64;
    for (i, t) in report.tenants.iter().enumerate() {
        let role = if i == 0 { "cold" } else { "active" };
        let mut lat: Vec<f64> = if i == 0 {
            cold_out.iter().map(|o| o.latency_ns).collect()
        } else {
            outcomes
                .iter()
                .filter(|o| o.tenant == t.tenant)
                .map(|o| o.latency_ns)
                .collect()
        };
        lat.sort_by(|a, b| a.total_cmp(b));
        let mean_ns = lat.iter().sum::<f64>() / lat.len().max(1) as f64;
        let p99_ms = pctile(&lat, 0.99) / 1e6;
        if i > 0 {
            rates.push(1e9 / mean_ns.max(1.0));
            worst_p99_ms = worst_p99_ms.max(p99_ms);
        }
        rows.push(TenantRow {
            tenant: t.tenant,
            name: t.name.clone(),
            role,
            graphs: lat.len() as u64,
            p50_ms: pctile(&lat, 0.50) / 1e6,
            p99_ms,
            mean_ms: mean_ns / 1e6,
            preempted: t.preempted,
            shed: t.shed,
            quota_bytes: t.last_quota,
            promoted_bytes: t.promoted_bytes,
            demoted_bytes: t.demoted_bytes,
        });
    }
    let stats = TenantModeStats {
        mode: mode_name,
        wall_ms: wall_ns / 1e6,
        aggregate_gps: outcomes.len() as f64 / (wall_ns / 1e9),
        jain: jain(&rates),
        worst_p99_ms,
        preempted: report.preempted_total(),
        shed: report.shed_total(),
        checksums_ok,
    };
    Ok((stats, rows))
}

/// TENANT — the multi-tenant fairness experiment (`exp tenant`).
///
/// Five tenants share one server: a cold tenant warms its hot set into
/// DRAM and goes idle, then four active tenants drive the server
/// closed-loop at saturation. The same load runs twice — once under
/// the cross-tenant quota arbiter (demand-proportional with 50%
/// weighted floors), once under free-for-all (keep-what-you-have,
/// never preempt) — and the run self-validates the arbiter's case:
///
/// 1. every graph's checksum is bit-identical to the tenant running
///    alone (determinism survives contention and preemption),
/// 2. quota mode beats free-for-all on the worst per-tenant p99,
/// 3. aggregate throughput gives up at most 10% for that fairness,
/// 4. the Jain index across active tenants' service rates is ≥ 0.9,
/// 5. the arbiter preempted the cold tenant's DRAM (and free-for-all
///    never preempts),
/// 6. an open-loop burst past the queue bound sheds at admission.
///
/// The digest lands in `BENCH_tenant.json` (schema
/// `tahoe-bench-tenant/v1`), gated by `benchgate`.
pub fn tenant(smoke: bool, dir: &str) -> Result<(), String> {
    use tahoe_obs::json;
    use tahoe_server::{ArbiterMode, QuotaPolicy};

    banner(if smoke {
        "TENANT multi-tenant fairness (smoke): quota arbiter vs free-for-all"
    } else {
        "TENANT multi-tenant fairness: quota arbiter vs free-for-all"
    });
    let geo = TenantGeometry::new(smoke);
    let base_seed = 40;
    let quota = ArbiterMode::Quota(QuotaPolicy::DemandProportional { floor_frac: 0.5 });
    let modes = [
        tenant_mode("quota", quota, &geo, base_seed)?,
        tenant_mode("free_for_all", ArbiterMode::FreeForAll, &geo, base_seed)?,
    ];

    for (stats, rows) in &modes {
        println!(
            "  {:<13} wall {:>8.1} ms  agg {:>6.1} graphs/s  jain {:.3}  worst p99 {:>8.2} ms  preempted {}  shed {}",
            stats.mode, stats.wall_ms, stats.aggregate_gps, stats.jain, stats.worst_p99_ms,
            stats.preempted, stats.shed
        );
        for r in rows {
            println!(
                "    {:<6} {:<7} graphs {:>2}  p50 {:>8.2} ms  p99 {:>8.2} ms  quota {:>7} B  prom {:>7} B  dem {:>7} B",
                r.name, r.role, r.graphs, r.p50_ms, r.p99_ms, r.quota_bytes,
                r.promoted_bytes, r.demoted_bytes
            );
        }
    }

    // ---- self-validation: the quota arbiter must earn its keep ------
    let (q, f) = (&modes[0].0, &modes[1].0);
    let checksums_match_solo = q.checksums_ok && f.checksums_ok;
    if !checksums_match_solo {
        return Err("a tenant checksum diverged from its solo reference".into());
    }
    if q.worst_p99_ms >= f.worst_p99_ms {
        return Err(format!(
            "quota worst p99 {:.2} ms does not beat free-for-all {:.2} ms",
            q.worst_p99_ms, f.worst_p99_ms
        ));
    }
    if q.aggregate_gps < 0.9 * f.aggregate_gps {
        return Err(format!(
            "quota aggregate throughput {:.1} graphs/s gave up more than 10% vs free-for-all {:.1}",
            q.aggregate_gps, f.aggregate_gps
        ));
    }
    if q.jain < 0.9 {
        return Err(format!(
            "quota Jain index {:.3} below the 0.9 floor",
            q.jain
        ));
    }
    if q.preempted == 0 {
        return Err("quota mode never preempted the cold tenant".into());
    }
    if f.preempted != 0 {
        return Err(format!("free-for-all preempted {} times", f.preempted));
    }
    if q.shed == 0 {
        return Err("the burst past the queue bound shed nothing".into());
    }

    // ---- BENCH_tenant.json ------------------------------------------
    let topo = tahoe_realmem::numa::probe();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"tahoe-bench-tenant/v1\",\n");
    out.push_str(&format!(
        "  \"machine\": {{\"arch\": \"{}\", \"os\": \"{}\", \"numa_nodes\": {}, \"cpus\": {}, \"smoke\": {}}},\n",
        std::env::consts::ARCH,
        std::env::consts::OS,
        topo.nodes,
        cpus,
        smoke
    ));
    out.push_str(&format!(
        "  \"workload\": {{\"active_tenants\": 4, \"cold_tenants\": 1, \"pieces\": {}, \"piece_bytes\": {}, \"windows\": {}, \"tasks_per_window\": {}, \"compute_us\": {:.1}, \"run_ms\": {}, \"warmup_graphs\": {}, \"burst\": {}, \"dram_budget\": {}}},\n",
        geo.pieces, geo.piece_bytes, geo.windows, geo.tasks_per_window, geo.compute_us,
        geo.run_ms, geo.warmup_graphs, geo.burst, geo.dram_budget()
    ));
    out.push_str(
        "  \"calibration\": {\"dram_gbps\": 10.0, \"nvm_gbps\": 0.25, \"dram_lat_ns\": 100.0, \"nvm_lat_ns\": 500.0},\n",
    );
    out.push_str("  \"modes\": [\n");
    for (mi, (stats, rows)) in modes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"wall_ms\": {:.3}, \"aggregate_graphs_per_s\": {:.3}, \"jain\": {:.4}, \"worst_p99_ms\": {:.3}, \"preempted\": {}, \"shed\": {}, \"checksums_match_solo\": {}, \"tenants\": [\n",
            stats.mode, stats.wall_ms, stats.aggregate_gps, stats.jain, stats.worst_p99_ms,
            stats.preempted, stats.shed, stats.checksums_ok
        ));
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"tenant\": {}, \"name\": \"{}\", \"role\": \"{}\", \"graphs\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \"preempted\": {}, \"shed\": {}, \"quota_bytes\": {}, \"promoted_bytes\": {}, \"demoted_bytes\": {}}}{}\n",
                r.tenant, r.name, r.role, r.graphs, r.p50_ms, r.p99_ms, r.mean_ms,
                r.preempted, r.shed, r.quota_bytes, r.promoted_bytes, r.demoted_bytes,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if mi + 1 < modes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"consistency\": {{\"checksums_match_solo\": true, \"quota_beats_ffa_worst_p99\": true, \"throughput_within_10pct\": true, \"jain_quota_ge_090\": true, \"quota_preempts\": true, \"ffa_never_preempts\": true, \"burst_sheds\": true, \"quota_worst_p99_ms\": {:.3}, \"ffa_worst_p99_ms\": {:.3}, \"throughput_ratio\": {:.4}}}\n}}\n",
        q.worst_p99_ms,
        f.worst_p99_ms,
        q.aggregate_gps / f.aggregate_gps
    ));
    json::parse(&out).map_err(|e| format!("BENCH_tenant.json self-check: {e}"))?;

    let path = std::path::Path::new(dir);
    std::fs::create_dir_all(path).map_err(|e| format!("create {dir}: {e}"))?;
    std::fs::write(path.join("BENCH_tenant.json"), &out)
        .map_err(|e| format!("write BENCH_tenant.json: {e}"))?;
    println!(
        "  quota beats free-for-all on worst p99 ({:.2} vs {:.2} ms), jain {:.3} -> {dir}/BENCH_tenant.json",
        q.worst_p99_ms, f.worst_p99_ms, q.jain
    );
    Ok(())
}

/// Run every experiment in order.
pub fn all() {
    e1();
    e2();
    e3();
    e4();
    e5();
    e6();
    e7();
    e8();
    e9();
    e10();
    e11();
    e12();
    e13();
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_workloads::stream;

    #[test]
    fn platform_builders_scale_with_app() {
        let app = stream::app(Scale::Test);
        let p = platform_bw(&app, 0.5);
        assert!(p.dram.capacity >= 1 << 20);
        assert!(p.nvm.capacity >= app.footprint());
        let q = platform_lat(&app, 4.0);
        assert!(q.nvm.read_lat_ns > q.dram.read_lat_ns);
    }

    #[test]
    fn dram_budget_is_quarter_footprint() {
        let app = stream::app(Scale::Bench);
        assert_eq!(dram_budget(&app), app.footprint() / 4);
    }
}
