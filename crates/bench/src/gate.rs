//! Perf-regression gate: compare a freshly produced `BENCH_*.json`
//! artifact against the committed baseline under `baselines/`.
//!
//! The gate is schema-dispatched — each artifact family gets the
//! comparison its numbers can bear:
//!
//! * `tahoe-bench-obs/v1` — the simulated capture is deterministic, so
//!   the digest must match the baseline **exactly** (event counts per
//!   kind, task count, makespan).
//! * `tahoe-bench-real/v1` and `/v2` — wall clocks vary per machine;
//!   the gate checks the consistency flags and that the DRAM/NVM
//!   throughput ratio stays within a tolerance band of the baseline's
//!   ratio. A committed v1 baseline may gate a v2 fresh artifact (v2
//!   is a superset: it adds the `tiers` table, per-policy
//!   `final_tier_objects`, and — for 3-tier sweeps — `plan`/`modelled`
//!   blocks), so the schema bump does not orphan old baselines. When
//!   the fresh artifact carries a `modelled` block the gate also
//!   re-derives the 3-tier case: the middle tier holds a latency-bound
//!   object, the 3-tier modelled runtime beats both 2-tier
//!   degenerations, and — the modelled numbers being calibration-free
//!   and deterministic — a baseline `modelled` block must be
//!   reproduced to float round-off. A fresh `sweep` block (the
//!   middle-tier capacity study) is re-derived for monotonicity and
//!   reproduced against a baseline sweep the same way.
//! * `tahoe-bench-par/v1` — consistency flags, Tahoe still migrates at
//!   ≥2 workers, the best migration overlap has not collapsed relative
//!   to the baseline, and — when the fresh machine actually has ≥2
//!   cores — DRAM-only parallel speedup clears its floor at 2 workers
//!   and does not degrade as workers grow (up to the core count).
//! * `tahoe-bench-audit/v1` — the model audit still audits objects, the
//!   recorder's self-overhead stays under its ceiling, and MAPE /
//!   sign-agreement have not regressed beyond the tolerance bands.
//! * `tahoe-bench-sanitize/v1` — violation counts are deterministic by
//!   construction (schedule-independent reports), so the whole digest
//!   — fuzz coverage, static pass, per-fixture violation sets — must
//!   match the baseline **exactly**.
//! * `tahoe-bench-verify/v1` — everything the plan auditor and the
//!   protocol model checker report is a pure function of the code (no
//!   wall clocks, no calibration), so the whole digest must match the
//!   baseline **exactly**: solver-plan audit counts, preflight
//!   coverage, per-fixture diagnostic sets, and — the canary for any
//!   change to the word algebra or the checker — the pinned
//!   explored-state and transition counts of the certification sweep.
//! * `tahoe-bench-tenant/v1` — walls are machine-dependent, so the gate
//!   re-derives the arbiter's case from the fresh run's own numbers:
//!   checksums match the solo references, quota mode beats free-for-all
//!   on the worst per-tenant p99, aggregate throughput retains ≥90% of
//!   free-for-all, the Jain fairness index clears its floor (and does
//!   not collapse relative to the baseline), the quota arbiter
//!   preempted while free-for-all never does, and the burst shed.
//! * `tahoe-bench-blame/v1` — the causal profiler's self-consistency is
//!   machine-independent even though the walls are not: the
//!   critical-path length stays within its band of the observed span,
//!   the blame table's aggregate overlap reconciles with the engine's
//!   (re-derived from the fresh numbers, never trusted from the flags),
//!   the blame table covers every committed migration, what-if signs
//!   agree with the knapsack, the flight recorder dropped nothing, and
//!   a telemetry plane that served must have matched the shutdown
//!   report bit for bit.
//!
//! [`compare`] returns the list of violations (empty = gate passes);
//! structural problems (unparseable JSON, schema mismatch) are `Err`.

use tahoe_obs::json::{self, Value};

/// Hard ceiling on the flight recorder's self-overhead, percent.
pub const OVERHEAD_CEILING_PCT: f64 = 5.0;

/// Multiplicative tolerance band for the real-mode throughput ratio.
pub const REAL_RATIO_BAND: f64 = 2.5;

/// Relative tolerance for the deterministic 3-tier `modelled` block:
/// the numbers derive from preset tier specs and the task graph alone
/// (no machine calibration), so baseline and fresh must agree to float
/// round-off.
pub const REAL3_MODEL_TOL: f64 = 1e-9;

/// Fresh best-overlap must retain at least this fraction of baseline's.
pub const PAR_OVERLAP_RETENTION: f64 = 0.2;

/// On a multicore machine, DRAM-only must reach at least this speedup
/// at 2 workers over its own 1-worker run.
pub const PAR_SPEEDUP_2W_FLOOR: f64 = 1.3;

/// Speedup may not degrade by more than this factor between consecutive
/// measured worker counts (both within the machine's core count).
pub const PAR_SCALING_SLACK: f64 = 0.9;

/// Jain fairness floor for the quota-arbitrated multi-tenant run.
pub const TENANT_JAIN_FLOOR: f64 = 0.9;

/// Quota mode must retain at least this fraction of free-for-all's
/// aggregate throughput.
pub const TENANT_THROUGHPUT_RETENTION: f64 = 0.9;

/// Fresh quota-mode Jain may not drop more than this below baseline's.
pub const TENANT_JAIN_DRIFT: f64 = 0.05;

/// Critical-path length must land within this percentage of the
/// observed execution span.
pub const BLAME_CRIT_BAND_PCT: f64 = 5.0;

/// Blame-side aggregate `%overlap` must reconcile with the migration
/// engine's `pct_overlap` within this many percentage points.
pub const BLAME_OVERLAP_BAND_PCT: f64 = 1.0;

fn field<'v>(v: &'v Value, path: &[&str]) -> Result<&'v Value, String> {
    let mut cur = v;
    for p in path {
        cur = cur
            .get(p)
            .ok_or_else(|| format!("missing field `{}`", path.join(".")))?;
    }
    Ok(cur)
}

fn num(v: &Value, path: &[&str]) -> Result<f64, String> {
    field(v, path)?
        .as_f64()
        .ok_or_else(|| format!("field `{}` is not a number", path.join(".")))
}

fn flag(v: &Value, path: &[&str]) -> Result<bool, String> {
    field(v, path)?
        .as_bool()
        .ok_or_else(|| format!("field `{}` is not a bool", path.join(".")))
}

fn schema_of(v: &Value) -> Result<&str, String> {
    field(v, &["schema"])?
        .as_str()
        .ok_or_else(|| "field `schema` is not a string".to_string())
}

/// Compare a fresh artifact against its committed baseline. Both must
/// carry the same `schema` tag. Returns the violations found (an empty
/// vector means the gate passes).
pub fn compare(baseline: &Value, fresh: &Value) -> Result<Vec<String>, String> {
    let bs = schema_of(baseline)?;
    let fs = schema_of(fresh)?;
    // Migration shim: a committed `tahoe-bench-real/v1` baseline still
    // gates a v2 fresh artifact — every field the v1 comparison reads
    // survives unchanged in v2, which only adds blocks.
    if bs == "tahoe-bench-real/v1" && fs == "tahoe-bench-real/v2" {
        return compare_real_any(baseline, fresh);
    }
    if bs != fs {
        return Err(format!("schema mismatch: baseline `{bs}` vs fresh `{fs}`"));
    }
    match bs {
        "tahoe-bench-obs/v1" => compare_obs(baseline, fresh),
        "tahoe-bench-real/v1" | "tahoe-bench-real/v2" => compare_real_any(baseline, fresh),
        "tahoe-bench-par/v1" => compare_par(baseline, fresh),
        "tahoe-bench-audit/v1" => compare_audit(baseline, fresh),
        "tahoe-bench-sanitize/v1" => compare_sanitize(baseline, fresh),
        "tahoe-bench-verify/v1" => compare_verify(baseline, fresh),
        "tahoe-bench-tenant/v1" => compare_tenant(baseline, fresh),
        "tahoe-bench-blame/v1" => compare_blame(baseline, fresh),
        other => Err(format!("unknown artifact schema `{other}`")),
    }
}

/// Convenience wrapper over [`compare`] for raw JSON text.
pub fn compare_text(baseline: &str, fresh: &str) -> Result<Vec<String>, String> {
    let b = json::parse(baseline).map_err(|e| format!("baseline: {e}"))?;
    let f = json::parse(fresh).map_err(|e| format!("fresh: {e}"))?;
    compare(&b, &f)
}

fn compare_obs(baseline: &Value, fresh: &Value) -> Result<Vec<String>, String> {
    let mut violations = Vec::new();
    // Deterministic capture: every digest field must match exactly.
    for path in [
        ["workload", "name"].as_slice(),
        &["workload", "footprint_bytes"],
        &["workload", "windows"],
        &["workload", "tasks"],
        &["events", "total"],
        &["makespan_ns"],
        &["migrations"],
        &["ring_dropped"],
    ] {
        let b = field(baseline, path)?;
        let f = field(fresh, path)?;
        if b != f {
            violations.push(format!(
                "obs digest field `{}` changed: baseline {b:?} vs fresh {f:?}",
                path.join(".")
            ));
        }
    }
    let b_kinds = field(baseline, &["events", "by_kind"])?;
    let f_kinds = field(fresh, &["events", "by_kind"])?;
    if b_kinds != f_kinds {
        violations.push(format!(
            "obs per-kind event counts changed: baseline {b_kinds:?} vs fresh {f_kinds:?}"
        ));
    }
    // Beyond matching the baseline, the drop counter must be absolutely
    // zero: a saturated recorder silently truncates the event stream
    // every downstream consumer (exporters, crit-path, blame) trusts.
    if num(fresh, &["ring_dropped"])? != 0.0 {
        violations.push(format!(
            "flight recorder dropped {} events during the obs artifact run",
            num(fresh, &["ring_dropped"])?
        ));
    }
    Ok(violations)
}

fn real_throughput(v: &Value, policy: &str) -> Result<f64, String> {
    let runs = field(v, &["policies"])?
        .as_array()
        .ok_or("`policies` is not an array")?;
    runs.iter()
        .find(|r| r.get("policy").and_then(|p| p.as_str()) == Some(policy))
        .and_then(|r| r.get("throughput_gbps").and_then(|t| t.as_f64()))
        .ok_or_else(|| format!("policy `{policy}` missing from `policies`"))
}

/// The real-mode comparison across schema versions: the v1 checks
/// always apply; a fresh artifact carrying the 3-tier `modelled` block
/// additionally gets the N-tier case re-derived.
fn compare_real_any(baseline: &Value, fresh: &Value) -> Result<Vec<String>, String> {
    let mut violations = compare_real(baseline, fresh)?;
    if fresh.get("modelled").is_some() {
        violations.extend(compare_real3(baseline, fresh)?);
    }
    Ok(violations)
}

fn compare_real(baseline: &Value, fresh: &Value) -> Result<Vec<String>, String> {
    let mut violations = Vec::new();
    for path in [
        ["consistency", "all_policies_match_reference"].as_slice(),
        &["consistency", "dram_throughput_ge_nvm"],
    ] {
        if !flag(fresh, path)? {
            violations.push(format!("fresh `{}` is false", path.join(".")));
        }
    }
    let f_dram = real_throughput(fresh, "DRAM-only")?;
    let f_nvm = real_throughput(fresh, "NVM-only")?;
    if f_dram < f_nvm {
        violations.push(format!(
            "DRAM-only throughput {f_dram:.3} GB/s below NVM-emulated {f_nvm:.3} GB/s"
        ));
    }
    // The absolute throughputs are machine-dependent, but the injected
    // NVM slowdown ratio should be portable within a generous band.
    let b_ratio =
        (real_throughput(baseline, "DRAM-only")? / real_throughput(baseline, "NVM-only")?).max(1.0);
    let f_ratio = (f_dram / f_nvm.max(f64::MIN_POSITIVE)).max(1.0);
    let (lo, hi) = (
        (b_ratio / REAL_RATIO_BAND).max(1.0),
        b_ratio * REAL_RATIO_BAND,
    );
    if f_ratio < lo || f_ratio > hi {
        violations.push(format!(
            "NVM slowdown ratio {f_ratio:.3} outside [{lo:.3}, {hi:.3}] (baseline {b_ratio:.3})"
        ));
    }
    Ok(violations)
}

/// 3-tier extras for `tahoe-bench-real/v2` artifacts with a `modelled`
/// block: self-validation flags hold, the middle tier earned its keep
/// (holds ≥1 object, ≥1 of them latency-bound), the 3-tier modelled
/// runtime beats both 2-tier degenerations, and — when the baseline
/// also carries the block — the deterministic numbers are reproduced
/// to round-off.
fn compare_real3(baseline: &Value, fresh: &Value) -> Result<Vec<String>, String> {
    let mut violations = Vec::new();
    for path in [
        ["consistency", "mid_tier_wins_latency_bound"].as_slice(),
        &["consistency", "three_tier_beats_both_two_tier"],
        &["consistency", "tahoe_uses_mid_tier"],
    ] {
        if !flag(fresh, path)? {
            violations.push(format!("fresh `{}` is false", path.join(".")));
        }
    }
    let t3 = num(fresh, &["modelled", "tahoe3_ns"])?;
    let t2_nvm = num(fresh, &["modelled", "two_tier_dram_nvm_ns"])?;
    let t2_cxl = num(fresh, &["modelled", "two_tier_dram_cxl_ns"])?;
    let eps = 1.0 + REAL3_MODEL_TOL;
    if t3 > t2_nvm * eps {
        violations.push(format!(
            "3-tier modelled runtime {t3:.1} ns worse than 2-tier DRAM+NVM {t2_nvm:.1} ns"
        ));
    }
    if t3 > t2_cxl * eps {
        violations.push(format!(
            "3-tier modelled runtime {t3:.1} ns worse than 2-tier DRAM+CXL {t2_cxl:.1} ns"
        ));
    }
    if num(fresh, &["modelled", "mid_tier_objects"])? < 1.0 {
        violations.push("3-tier plan left the middle tier empty".into());
    }
    if num(fresh, &["modelled", "mid_tier_latency_bound_objects"])? < 1.0 {
        violations.push("no latency-bound object won the middle tier".into());
    }
    if baseline.get("modelled").is_some() {
        for name in [
            "tahoe3_ns",
            "two_tier_dram_nvm_ns",
            "two_tier_dram_cxl_ns",
            "mid_tier_objects",
            "mid_tier_latency_bound_objects",
        ] {
            let b = num(baseline, &["modelled", name])?;
            let f = num(fresh, &["modelled", name])?;
            if (b - f).abs() > REAL3_MODEL_TOL * b.abs().max(1.0) {
                violations.push(format!(
                    "deterministic `modelled.{name}` drifted: baseline {b} vs fresh {f}"
                ));
            }
        }
    }
    // Middle-tier capacity sweep: monotonicity is re-derived from the
    // fresh rows (never trusted from the flag), and a baseline sweep —
    // the numbers being calibration-free — must be reproduced to
    // round-off.
    if let Some(sweep) = fresh.get("sweep") {
        if !flag(fresh, &["consistency", "sweep_monotone"])? {
            violations.push("fresh `consistency.sweep_monotone` is false".into());
        }
        let rows = sweep.as_array().ok_or("`sweep` is not an array")?;
        if rows.len() < 4 {
            violations.push(format!(
                "middle-tier sweep covers only {} capacities (need >= 4)",
                rows.len()
            ));
        }
        let row_ns = |r: &Value| {
            r.get("modelled_ns")
                .and_then(|n| n.as_f64())
                .ok_or("sweep row missing `modelled_ns`".to_string())
        };
        for pair in rows.windows(2) {
            let (prev, next) = (row_ns(&pair[0])?, row_ns(&pair[1])?);
            if next > prev * (1.0 + REAL3_MODEL_TOL) {
                violations.push(format!(
                    "middle-tier sweep not monotone: {next:.1} ns after {prev:.1} ns"
                ));
            }
        }
        if let Some(bsweep) = baseline.get("sweep") {
            let brows = bsweep
                .as_array()
                .ok_or("baseline `sweep` is not an array")?;
            if brows.len() != rows.len() {
                violations.push(format!(
                    "sweep length changed: baseline {} rows vs fresh {}",
                    brows.len(),
                    rows.len()
                ));
            }
            for (i, (b, f)) in brows.iter().zip(rows).enumerate() {
                for name in ["cxl_capacity_bytes", "mid_tier_objects"] {
                    if b.get(name) != f.get(name) {
                        violations.push(format!(
                            "sweep[{i}].{name} changed: baseline {:?} vs fresh {:?}",
                            b.get(name),
                            f.get(name)
                        ));
                    }
                }
                let (bn, fn_) = (row_ns(b)?, row_ns(f)?);
                if (bn - fn_).abs() > REAL3_MODEL_TOL * bn.abs().max(1.0) {
                    violations.push(format!(
                        "deterministic `sweep[{i}].modelled_ns` drifted: baseline {bn} vs fresh {fn_}"
                    ));
                }
            }
        }
    }
    Ok(violations)
}

fn par_best_overlap(v: &Value) -> Result<(f64, bool), String> {
    let runs = field(v, &["runs"])?
        .as_array()
        .ok_or("`runs` is not an array")?;
    let mut best = 0.0f64;
    let mut migrated = false;
    for r in runs {
        let policy = r.get("policy").and_then(|p| p.as_str()).unwrap_or("");
        let workers = r.get("workers").and_then(|w| w.as_f64()).unwrap_or(0.0);
        if policy != "tahoe" || workers < 2.0 {
            continue;
        }
        if r.get("migrations").and_then(|m| m.as_f64()).unwrap_or(0.0) > 0.0 {
            migrated = true;
        }
        best = best.max(r.get("pct_overlap").and_then(|p| p.as_f64()).unwrap_or(0.0));
    }
    Ok((best, migrated))
}

/// Measured `(workers, wall_ns)` points for one policy, sorted by
/// worker count. Runs without both fields are skipped (older artifacts
/// did not record `wall_ns` per parallel run).
fn par_policy_walls(v: &Value, policy: &str) -> Result<Vec<(f64, f64)>, String> {
    let runs = field(v, &["runs"])?
        .as_array()
        .ok_or("`runs` is not an array")?;
    let mut pts: Vec<(f64, f64)> = Vec::new();
    for r in runs {
        if r.get("policy").and_then(|p| p.as_str()) != Some(policy) {
            continue;
        }
        let workers = r.get("workers").and_then(|w| w.as_f64());
        let wall = r.get("wall_ns").and_then(|w| w.as_f64());
        if let (Some(w), Some(wall)) = (workers, wall) {
            if w >= 1.0 && wall > 0.0 {
                pts.push((w, wall));
            }
        }
    }
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    Ok(pts)
}

fn compare_par(baseline: &Value, fresh: &Value) -> Result<Vec<String>, String> {
    let mut violations = Vec::new();
    for path in [
        ["consistency", "all_runs_match_reference"].as_slice(),
        &["consistency", "tahoe_multiworker_overlapped"],
    ] {
        if !flag(fresh, path)? {
            violations.push(format!("fresh `{}` is false", path.join(".")));
        }
    }
    let (b_best, _) = par_best_overlap(baseline)?;
    let (f_best, f_migrated) = par_best_overlap(fresh)?;
    if !f_migrated {
        violations.push("tahoe at >=2 workers performed no migrations".into());
    }
    let floor = b_best * PAR_OVERLAP_RETENTION;
    if f_best < floor {
        violations.push(format!(
            "best tahoe overlap {f_best:.1}% collapsed below {floor:.1}% (baseline best {b_best:.1}%)"
        ));
    }
    // Parallel-scaling band. Speedups are recomputed from the fresh
    // run's own wall clocks (never trusted from the recorded `speedup`
    // field) and only enforced where the machine had real cores to
    // scale onto: a 1-CPU box oversubscribes the spin-paced compute and
    // legitimately slows down, as do worker counts beyond the core
    // count, so those points are exempt.
    let cpus = fresh
        .get("machine")
        .and_then(|m| m.get("cpus"))
        .and_then(|c| c.as_f64())
        .unwrap_or(1.0);
    if cpus >= 2.0 {
        let pts = par_policy_walls(fresh, "DRAM-only")?;
        if let Some(&(_, base)) = pts.iter().find(|(w, _)| *w == 1.0) {
            let speedups: Vec<(f64, f64)> = pts
                .iter()
                .filter(|(w, _)| *w <= cpus)
                .map(|&(w, wall)| (w, base / wall))
                .collect();
            if let Some(&(_, s2)) = speedups.iter().find(|(w, _)| *w == 2.0) {
                if s2 < PAR_SPEEDUP_2W_FLOOR {
                    violations.push(format!(
                        "DRAM-only speedup at 2 workers is {s2:.2}x, below the \
                         {PAR_SPEEDUP_2W_FLOOR:.1}x floor ({cpus:.0} cpus)"
                    ));
                }
            }
            for pair in speedups.windows(2) {
                let ((wa, sa), (wb, sb)) = (pair[0], pair[1]);
                if sb < sa * PAR_SCALING_SLACK {
                    violations.push(format!(
                        "DRAM-only speedup degrades from {sa:.2}x at {wa:.0} workers to \
                         {sb:.2}x at {wb:.0} (floor {:.2}x)",
                        sa * PAR_SCALING_SLACK
                    ));
                }
            }
        }
    }
    Ok(violations)
}

fn compare_audit(baseline: &Value, fresh: &Value) -> Result<Vec<String>, String> {
    let mut violations = Vec::new();
    if num(fresh, &["audit", "audited"])? < 1.0 {
        violations.push("audit covered zero objects".into());
    }
    if num(fresh, &["audit", "migrations"])? < 1.0 {
        violations.push("audit run performed no migrations".into());
    }
    let overhead = num(fresh, &["overhead", "overhead_pct"])?;
    if overhead > OVERHEAD_CEILING_PCT {
        violations.push(format!(
            "recorder self-overhead {overhead:.2}% exceeds {OVERHEAD_CEILING_PCT:.1}% ceiling"
        ));
    }
    // Model accuracy: allow headroom over the committed baseline (wall
    // clocks are noisy), but catch a model that has come apart.
    let b_mape = num(baseline, &["audit", "mape_pct"])?;
    let f_mape = num(fresh, &["audit", "mape_pct"])?;
    let mape_limit = (b_mape * 2.0).max(b_mape + 25.0);
    if f_mape > mape_limit {
        violations.push(format!(
            "MAPE {f_mape:.1}% exceeds limit {mape_limit:.1}% (baseline {b_mape:.1}%)"
        ));
    }
    let b_sign = num(baseline, &["audit", "sign_agreement_pct"])?;
    let f_sign = num(fresh, &["audit", "sign_agreement_pct"])?;
    let sign_floor = (b_sign - 25.0).max(50.0);
    if f_sign < sign_floor {
        violations.push(format!(
            "sign agreement {f_sign:.1}% below floor {sign_floor:.1}% (baseline {b_sign:.1}%)"
        ));
    }
    Ok(violations)
}

fn compare_sanitize(baseline: &Value, fresh: &Value) -> Result<Vec<String>, String> {
    let mut violations = Vec::new();
    // Self-reported health flags must hold on the fresh run.
    for path in [
        ["static", "clean"].as_slice(),
        &["fuzz", "clean"],
        &["consistency", "correct_workloads_clean"],
        &["consistency", "fixtures_exact"],
    ] {
        if !flag(fresh, path)? {
            violations.push(format!("fresh `{}` is false", path.join(".")));
        }
    }
    // Everything the sanitizer reports is schedule-independent, so the
    // digest must match the baseline exactly: same workloads verified,
    // same fuzz coverage and shadowed-access count, same per-fixture
    // violation sets.
    for path in [["static"].as_slice(), &["fuzz"], &["fixtures"]] {
        let b = field(baseline, path)?;
        let f = field(fresh, path)?;
        if b != f {
            violations.push(format!(
                "sanitize digest `{}` changed: baseline {b:?} vs fresh {f:?}",
                path.join(".")
            ));
        }
    }
    Ok(violations)
}

fn compare_verify(baseline: &Value, fresh: &Value) -> Result<Vec<String>, String> {
    let mut violations = Vec::new();
    // Self-reported health flags must hold on the fresh run.
    for path in [
        ["plans", "clean"].as_slice(),
        &["preflight", "clean"],
        &["mcheck", "clean"],
        &["consistency", "solver_plans_clean"],
        &["consistency", "preflight_clean"],
        &["consistency", "fixtures_exact"],
        &["consistency", "protocol_certified"],
        &["consistency", "bugs_all_caught"],
    ] {
        if !flag(fresh, path)? {
            violations.push(format!("fresh `{}` is false", path.join(".")));
        }
    }
    // The auditor and the model checker are deterministic pure
    // functions — no tolerance bands, the digest matches exactly or
    // something changed. In particular `mcheck.configs[*].states` /
    // `transitions` pin the certification sweep's explored state space.
    for path in [
        ["plans"].as_slice(),
        &["preflight"],
        &["fixtures"],
        &["mcheck"],
    ] {
        let b = field(baseline, path)?;
        let f = field(fresh, path)?;
        if b != f {
            violations.push(format!(
                "verify digest `{}` changed: baseline {b:?} vs fresh {f:?}",
                path.join(".")
            ));
        }
    }
    Ok(violations)
}

/// Locate one arbitration mode's block in a tenant artifact.
fn tenant_mode<'v>(v: &'v Value, mode: &str) -> Result<&'v Value, String> {
    field(v, &["modes"])?
        .as_array()
        .ok_or("`modes` is not an array")?
        .iter()
        .find(|m| m.get("mode").and_then(|s| s.as_str()) == Some(mode))
        .ok_or_else(|| format!("mode `{mode}` missing from `modes`"))
}

fn compare_tenant(baseline: &Value, fresh: &Value) -> Result<Vec<String>, String> {
    let mut violations = Vec::new();
    // Self-reported consistency flags must hold on the fresh run.
    for name in [
        "checksums_match_solo",
        "quota_beats_ffa_worst_p99",
        "throughput_within_10pct",
        "jain_quota_ge_090",
        "quota_preempts",
        "ffa_never_preempts",
        "burst_sheds",
    ] {
        if !flag(fresh, &["consistency", name])? {
            violations.push(format!("fresh `consistency.{name}` is false"));
        }
    }
    // Re-derive the arbiter's case from the fresh per-mode numbers —
    // never trust the flags alone.
    let fq = tenant_mode(fresh, "quota")?;
    let ff = tenant_mode(fresh, "free_for_all")?;
    let (q_p99, f_p99) = (num(fq, &["worst_p99_ms"])?, num(ff, &["worst_p99_ms"])?);
    if q_p99 >= f_p99 {
        violations.push(format!(
            "quota worst p99 {q_p99:.2} ms does not beat free-for-all {f_p99:.2} ms"
        ));
    }
    let (q_thr, f_thr) = (
        num(fq, &["aggregate_graphs_per_s"])?,
        num(ff, &["aggregate_graphs_per_s"])?,
    );
    if q_thr < TENANT_THROUGHPUT_RETENTION * f_thr {
        violations.push(format!(
            "quota throughput {q_thr:.1} graphs/s retains less than {:.0}% of free-for-all's {f_thr:.1}",
            TENANT_THROUGHPUT_RETENTION * 100.0
        ));
    }
    let q_jain = num(fq, &["jain"])?;
    let b_jain = num(tenant_mode(baseline, "quota")?, &["jain"])?;
    let jain_floor = TENANT_JAIN_FLOOR.max(b_jain - TENANT_JAIN_DRIFT);
    if q_jain < jain_floor {
        violations.push(format!(
            "quota Jain index {q_jain:.3} below floor {jain_floor:.3} (baseline {b_jain:.3})"
        ));
    }
    if num(fq, &["preempted"])? < 1.0 {
        violations.push("quota mode performed no preemptions".into());
    }
    if num(ff, &["preempted"])? > 0.0 {
        violations.push("free-for-all mode preempted".into());
    }
    if num(fq, &["shed"])? < 1.0 {
        violations.push("quota burst shed nothing".into());
    }
    Ok(violations)
}

fn compare_blame(baseline: &Value, fresh: &Value) -> Result<Vec<String>, String> {
    let mut violations = Vec::new();
    // Self-reported consistency flags must hold on the fresh run.
    for name in ["checksum_matches_reference", "blame_covers_all_migrations"] {
        if !flag(fresh, &["consistency", name])? {
            violations.push(format!("fresh `consistency.{name}` is false"));
        }
    }
    // Same workload family as the committed baseline, or the bands
    // below gate numbers that were never comparable.
    let b_name = field(baseline, &["workload", "name"])?;
    let f_name = field(fresh, &["workload", "name"])?;
    if b_name != f_name {
        violations.push(format!(
            "workload changed under the baseline: {b_name:?} vs {f_name:?}"
        ));
    }
    // Re-derive every band from the fresh numbers — never trust the
    // artifact's own pass/fail verdicts.
    let crit_pct = num(fresh, &["critpath", "crit_vs_span_pct"])?;
    if crit_pct > BLAME_CRIT_BAND_PCT {
        violations.push(format!(
            "critical path strayed {crit_pct:.2}% from the observed span \
             (band {BLAME_CRIT_BAND_PCT:.1}%)"
        ));
    }
    let blame_ov = num(fresh, &["reconciliation", "blame_pct_overlap"])?;
    let engine_ov = num(fresh, &["reconciliation", "engine_pct_overlap"])?;
    let delta = (blame_ov - engine_ov).abs();
    if delta > BLAME_OVERLAP_BAND_PCT {
        violations.push(format!(
            "blame overlap {blame_ov:.3}% vs engine overlap {engine_ov:.3}% \
             (delta {delta:.3}%, band {BLAME_OVERLAP_BAND_PCT:.1}%)"
        ));
    }
    if num(fresh, &["run", "migrations"])? < 1.0 {
        violations.push("blame run performed no migrations".into());
    }
    let blamed = num(fresh, &["reconciliation", "blamed_migrations"])?;
    let committed = num(fresh, &["reconciliation", "engine_migrations"])?;
    if blamed != committed {
        violations.push(format!(
            "blame table covers {blamed} migrations, engine committed {committed}"
        ));
    }
    if num(fresh, &["run", "ring_dropped"])? != 0.0 {
        violations.push(format!(
            "flight recorder dropped {} events; the blame table is incomplete",
            num(fresh, &["run", "ring_dropped"])?
        ));
    }
    let checked = num(fresh, &["consistency", "whatif_checked"])?;
    let agreeing = num(fresh, &["consistency", "whatif_agreeing"])?;
    if agreeing != checked {
        violations.push(format!(
            "what-if sign agreement {agreeing}/{checked}: model and knapsack disagree"
        ));
    }
    // The telemetry plane may be unavailable (no loopback sockets), but
    // when it served, the scrape must have matched the shutdown report.
    if flag(fresh, &["telemetry", "served"])?
        && !flag(fresh, &["telemetry", "scrape_matches_report"])?
    {
        violations.push("telemetry served but its scrape diverged from the shutdown report".into());
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs_doc(total: u64, makespan: f64) -> String {
        obs_doc_drops(total, makespan, 0)
    }

    fn obs_doc_drops(total: u64, makespan: f64, dropped: u64) -> String {
        format!(
            r#"{{"schema": "tahoe-bench-obs/v1",
                "workload": {{"name": "stream", "footprint_bytes": 786432, "windows": 6, "tasks": 24}},
                "events": {{"total": {total}, "by_kind": {{"migration_issued": 4, "worker_task": 24}}}},
                "makespan_ns": {makespan}, "migrations": 4, "ring_dropped": {dropped}}}"#
        )
    }

    /// A blame artifact with tunable band-relevant numbers; everything
    /// else stays at healthy fixed values.
    #[allow(clippy::too_many_arguments)]
    fn blame_doc(
        crit_pct: f64,
        blame_ov: f64,
        engine_ov: f64,
        blamed: u64,
        committed: u64,
        ring_dropped: u64,
        whatif_agreeing: u64,
        served: bool,
        scrape_matches: bool,
    ) -> String {
        format!(
            r#"{{"schema": "tahoe-bench-blame/v1",
                "machine": {{"arch": "x86_64", "os": "linux", "numa_nodes": 1, "cpus": 2, "smoke": true}},
                "workload": {{"name": "stream", "footprint_bytes": 786432, "windows": 4, "tasks": 16}},
                "run": {{"policy": "tahoe", "workers": 2, "seed": 7, "wall_ns": 3.2e6,
                         "checksum": "261b4ff712b71cae", "migrations": {committed}, "migrated_bytes": 786432,
                         "pct_overlap": {engine_ov}, "gate_wait_ns": 2724.0, "ring_dropped": {ring_dropped}}},
                "critpath": {{"crit_total_ns": 2.36e6, "span_ns": 2.36e6, "exec_wall_ns": 2.58e6,
                              "compute_ns": 1.5e6, "stall_ns": 2763.0, "idle_ns": 8.5e5,
                              "segments": 41, "tasks_on_path": 14, "crit_vs_span_pct": {crit_pct}}},
                "blame": [{{"object": 0, "tier": "dram", "migrations": {blamed}, "bytes": 786432,
                            "overlapped_ns": 4.6e4, "exposed_ns": 0.0, "gate_wait_ns": 0.0,
                            "chosen": true, "predicted_benefit_ns": 79872.1}}],
                "reconciliation": {{"blame_pct_overlap": {blame_ov}, "engine_pct_overlap": {engine_ov},
                                    "delta_pct": 0.0, "blamed_migrations": {blamed},
                                    "engine_migrations": {committed}, "unattributed_wait_ns": 3154.0}},
                "whatif": [],
                "telemetry": {{"served": {served}, "scrape_matches_report": {scrape_matches},
                               "tenants": 2, "completed_total": 2, "blame_samples": 20}},
                "consistency": {{"checksum_matches_reference": true, "crit_band_pct": 5.0,
                                 "overlap_band_pct": 1.0, "blame_covers_all_migrations": true,
                                 "whatif_checked": 3, "whatif_agreeing": {whatif_agreeing},
                                 "ring_dropped": {ring_dropped}}}}}"#
        )
    }

    fn healthy_blame_doc() -> String {
        blame_doc(0.1, 99.8, 100.0, 12, 12, 0, 3, true, true)
    }

    fn real_doc(dram_thr: f64, nvm_thr: f64) -> String {
        format!(
            r#"{{"schema": "tahoe-bench-real/v1",
                "policies": [
                  {{"policy": "DRAM-only", "throughput_gbps": {dram_thr}}},
                  {{"policy": "NVM-only", "throughput_gbps": {nvm_thr}}},
                  {{"policy": "tahoe", "throughput_gbps": {dram_thr}}}
                ],
                "consistency": {{"all_policies_match_reference": true, "dram_throughput_ge_nvm": true}}}}"#
        )
    }

    /// A v2 real artifact. With `modelled: true` it carries the 3-tier
    /// plan/modelled blocks (a `--tiers 3` sweep); otherwise it is the
    /// plain 2-tier sweep under the bumped schema.
    fn real_v2_doc(
        dram_thr: f64,
        nvm_thr: f64,
        modelled: Option<(f64, f64, f64, u64, u64)>,
        flags_true: bool,
    ) -> String {
        let mut extra = String::new();
        let mut flags =
            String::from(r#""all_policies_match_reference": true, "dram_throughput_ge_nvm": true"#);
        if let Some((t3, t2n, t2c, mid, midlat)) = modelled {
            // The sweep rows shrink from t3 as the CXL tier doubles.
            extra = format!(
                r#""plan": [{{"object": 0, "name": "p0", "bytes": 16384, "tier": 1, "tier_name": "CXL", "latency_bound": true}}],
                   "modelled": {{"tahoe3_ns": {t3}, "two_tier_dram_nvm_ns": {t2n}, "two_tier_dram_cxl_ns": {t2c},
                                 "mid_tier_objects": {mid}, "mid_tier_latency_bound_objects": {midlat}}},
                   "sweep": [
                     {{"cxl_capacity_bytes": 131072, "modelled_ns": {a}, "mid_tier_objects": 8}},
                     {{"cxl_capacity_bytes": 262144, "modelled_ns": {t3}, "mid_tier_objects": {mid}}},
                     {{"cxl_capacity_bytes": 524288, "modelled_ns": {b}, "mid_tier_objects": 16}},
                     {{"cxl_capacity_bytes": 1048576, "modelled_ns": {c}, "mid_tier_objects": 18}}
                   ],"#,
                a = t3 * 1.25,
                b = t3 * 0.875,
                c = t3 * 0.75
            );
            flags.push_str(&format!(
                r#", "mid_tier_wins_latency_bound": {flags_true}, "three_tier_beats_both_two_tier": {flags_true}, "tahoe_uses_mid_tier": {flags_true}, "sweep_monotone": {flags_true}"#
            ));
        }
        format!(
            r#"{{"schema": "tahoe-bench-real/v2",
                "tiers": [
                  {{"index": 0, "name": "DRAM", "capacity_bytes": 40960}},
                  {{"index": 1, "name": "CXL", "capacity_bytes": 262144}},
                  {{"index": 2, "name": "Optane PMM", "capacity_bytes": 5242880}}
                ],
                "policies": [
                  {{"policy": "DRAM-only", "throughput_gbps": {dram_thr}, "final_tier_objects": [20, 0, 0]}},
                  {{"policy": "NVM-only", "throughput_gbps": {nvm_thr}, "final_tier_objects": [0, 0, 20]}},
                  {{"policy": "tahoe", "throughput_gbps": {dram_thr}, "final_tier_objects": [2, 14, 4]}}
                ],
                {extra}
                "consistency": {{{flags}}}}}"#
        )
    }

    fn healthy_real3_doc() -> String {
        real_v2_doc(7.0, 3.0, Some((2.3e6, 2.9e6, 2.9e6, 14, 2)), true)
    }

    fn par_doc(overlap: f64, migrations: u64) -> String {
        format!(
            r#"{{"schema": "tahoe-bench-par/v1",
                "runs": [
                  {{"policy": "DRAM-only", "workers": 2, "migrations": 0, "pct_overlap": 0.0}},
                  {{"policy": "tahoe", "workers": 1, "migrations": 3, "pct_overlap": 0.0}},
                  {{"policy": "tahoe", "workers": 2, "migrations": {migrations}, "pct_overlap": {overlap}}}
                ],
                "consistency": {{"all_runs_match_reference": true, "tahoe_multiworker_overlapped": true}}}}"#
        )
    }

    /// A par artifact with a machine section and per-run wall clocks,
    /// as the current `exp par` writer emits. `dram_walls` gives the
    /// DRAM-only (workers, wall_ns) ladder.
    fn par_scaling_doc(cpus: u64, dram_walls: &[(u64, f64)]) -> String {
        let mut runs = String::new();
        for (w, wall) in dram_walls {
            runs.push_str(&format!(
                r#"{{"policy": "DRAM-only", "workers": {w}, "wall_ns": {wall}, "migrations": 0, "pct_overlap": 0.0}}, "#
            ));
        }
        runs.push_str(
            r#"{"policy": "tahoe", "workers": 1, "wall_ns": 120000.0, "migrations": 3, "pct_overlap": 0.0},
               {"policy": "tahoe", "workers": 2, "wall_ns": 70000.0, "migrations": 4, "pct_overlap": 60.0}"#,
        );
        format!(
            r#"{{"schema": "tahoe-bench-par/v1",
                "machine": {{"arch": "x86_64", "os": "linux", "numa_nodes": 1, "cpus": {cpus}, "smoke": true}},
                "runs": [{runs}],
                "consistency": {{"all_runs_match_reference": true, "tahoe_multiworker_overlapped": true}}}}"#
        )
    }

    fn audit_doc(mape: f64, sign: f64, overhead: f64) -> String {
        format!(
            r#"{{"schema": "tahoe-bench-audit/v1",
                "audit": {{"policy": "tahoe", "workers": 2, "run_seed": 0, "audited": 3,
                           "mape_pct": {mape}, "sign_agreement_pct": {sign},
                           "migrations": 4, "wall_ns": 1000000.0}},
                "overhead": {{"off_wall_ns": 900000.0, "on_wall_ns": 910000.0,
                              "overhead_pct": {overhead}, "reps": 3}}}}"#
        )
    }

    fn sanitize_doc(accesses: u64, wur: u64, fixtures_exact: bool) -> String {
        format!(
            r#"{{"schema": "tahoe-bench-sanitize/v1",
                "machine": {{"arch": "x86_64", "os": "linux", "numa_nodes": 1, "smoke": true}},
                "static": {{"workloads_verified": 12, "plans_audited": 12, "clean": true}},
                "fuzz": {{"workloads": 1, "workers": [1, 2, 4], "seeds": [0, 1, 2],
                          "runs": 9, "accesses_checked": {accesses}, "clean": true}},
                "fixtures": [
                  {{"name": "hidden_writer", "runs": 2, "static_match": true, "dynamic_match": {fixtures_exact},
                    "violations": {{"unordered_conflict": 1, "write_under_read": {wur}}}}}
                ],
                "consistency": {{"correct_workloads_clean": true, "fixtures_exact": {fixtures_exact}}}}}"#
        )
    }

    /// A verify artifact with a tunable pinned state count, fixture
    /// diagnostic count, and health flags.
    fn verify_doc(states2: u64, race_count: u64, flags_true: bool) -> String {
        format!(
            r#"{{"schema": "tahoe-bench-verify/v1",
                "machine": {{"arch": "x86_64", "os": "linux", "numa_nodes": 1, "smoke": true}},
                "plans": {{"workloads": 12, "tier_depths": [2, 3], "audited": 24, "steps_total": 61, "clean": true}},
                "preflight": {{"workloads": 2, "policies": 4, "runs": 8, "clean": true}},
                "fixtures": [
                  {{"name": "plan_move_races_reader", "violations": {{"plan_move_race": {race_count}}}, "exact": true}}
                ],
                "mcheck": {{"configs": [
                  {{"pinners": 2, "pin_cycles": 2, "moves": 2, "states": {states2}, "transitions": 560, "terminals": 1, "deadlocks": 0}},
                  {{"pinners": 3, "pin_cycles": 2, "moves": 2, "states": 1031, "transitions": 2040, "terminals": 1, "deadlocks": 0}}
                ], "bugs_injected": 4, "bugs_caught": 4, "clean": true}},
                "consistency": {{"solver_plans_clean": true, "preflight_clean": true, "fixtures_exact": {flags_true}, "protocol_certified": {flags_true}, "bugs_all_caught": true}}}}"#
        )
    }

    fn healthy_verify_doc() -> String {
        verify_doc(320, 1, true)
    }

    /// A tenant artifact with tunable quota-side numbers; the
    /// free-for-all side stays fixed (worst p99 12 ms, 90 graphs/s,
    /// zero preemptions) unless `ffa_preempted` says otherwise.
    #[allow(clippy::too_many_arguments)]
    fn tenant_doc(
        q_jain: f64,
        q_p99: f64,
        q_thr: f64,
        q_preempted: u64,
        q_shed: u64,
        ffa_preempted: u64,
        flags_true: bool,
    ) -> String {
        format!(
            r#"{{"schema": "tahoe-bench-tenant/v1",
                "machine": {{"arch": "x86_64", "os": "linux", "numa_nodes": 1, "cpus": 2, "smoke": true}},
                "modes": [
                  {{"mode": "quota", "wall_ms": 50.0, "aggregate_graphs_per_s": {q_thr},
                    "jain": {q_jain}, "worst_p99_ms": {q_p99}, "preempted": {q_preempted}, "shed": {q_shed},
                    "checksums_match_solo": true, "tenants": []}},
                  {{"mode": "free_for_all", "wall_ms": 50.0, "aggregate_graphs_per_s": 90.0,
                    "jain": 0.85, "worst_p99_ms": 12.0, "preempted": {ffa_preempted}, "shed": 0,
                    "checksums_match_solo": true, "tenants": []}}
                ],
                "consistency": {{"checksums_match_solo": {flags_true}, "quota_beats_ffa_worst_p99": {flags_true},
                                 "throughput_within_10pct": {flags_true}, "jain_quota_ge_090": {flags_true},
                                 "quota_preempts": {flags_true}, "ffa_never_preempts": {flags_true},
                                 "burst_sheds": {flags_true}}}}}"#
        )
    }

    fn healthy_tenant_doc() -> String {
        tenant_doc(0.98, 8.0, 88.0, 2, 3, 0, true)
    }

    #[test]
    fn identical_artifacts_pass_every_schema() {
        for doc in [
            obs_doc(40, 123456.0),
            real_doc(8.0, 2.0),
            par_doc(60.0, 4),
            audit_doc(40.0, 100.0, 1.0),
            sanitize_doc(216, 1, true),
            healthy_verify_doc(),
            healthy_tenant_doc(),
            healthy_blame_doc(),
        ] {
            let v = compare_text(&doc, &doc).expect("well-formed");
            assert!(v.is_empty(), "unexpected violations: {v:?}");
        }
    }

    #[test]
    fn verify_gate_pins_the_whole_digest() {
        let base = healthy_verify_doc();
        // A drifted explored-state count is the canary for any change
        // to the word algebra, the protocol model, or the checker.
        let v = compare_text(&base, &verify_doc(321, 1, true)).unwrap();
        assert!(v.iter().any(|m| m.contains("`mcheck` changed")), "{v:?}");
        // A fixture whose diagnostic set drifted fails exactly.
        let v = compare_text(&base, &verify_doc(320, 2, true)).unwrap();
        assert!(v.iter().any(|m| m.contains("`fixtures` changed")), "{v:?}");
        // Self-reported health flags must hold on the fresh artifact.
        let v = compare_text(&base, &verify_doc(320, 1, false)).unwrap();
        assert!(
            v.iter()
                .any(|m| m.contains("`consistency.protocol_certified` is false")),
            "{v:?}"
        );
    }

    #[test]
    fn blame_gate_rederives_every_band() {
        let base = healthy_blame_doc();
        // Critical path drifting past the 5% band fails.
        let v = compare_text(
            &base,
            &blame_doc(7.0, 99.8, 100.0, 12, 12, 0, 3, true, true),
        )
        .unwrap();
        assert!(
            v.iter().any(|m| m.contains("critical path strayed")),
            "{v:?}"
        );
        // Blame overlap diverging from the engine's by more than 1 point
        // fails, re-derived from the numbers (the delta field says 0.0).
        let v = compare_text(
            &base,
            &blame_doc(0.1, 95.0, 100.0, 12, 12, 0, 3, true, true),
        )
        .unwrap();
        assert!(v.iter().any(|m| m.contains("engine overlap")), "{v:?}");
        // A blame table that lost migrations fails.
        let v = compare_text(&base, &blame_doc(0.1, 99.8, 100.0, 9, 12, 0, 3, true, true)).unwrap();
        assert!(v.iter().any(|m| m.contains("engine committed")), "{v:?}");
        // Recorder drops invalidate the whole profile.
        let v = compare_text(
            &base,
            &blame_doc(0.1, 99.8, 100.0, 12, 12, 5, 3, true, true),
        )
        .unwrap();
        assert!(v.iter().any(|m| m.contains("dropped")), "{v:?}");
        // What-if signs disagreeing with the knapsack fails.
        let v = compare_text(
            &base,
            &blame_doc(0.1, 99.8, 100.0, 12, 12, 0, 2, true, true),
        )
        .unwrap();
        assert!(v.iter().any(|m| m.contains("sign agreement")), "{v:?}");
        // A served-but-divergent telemetry plane fails...
        let v = compare_text(
            &base,
            &blame_doc(0.1, 99.8, 100.0, 12, 12, 0, 3, true, false),
        )
        .unwrap();
        assert!(v.iter().any(|m| m.contains("telemetry served")), "{v:?}");
        // ...but a plane that could not bind at all is tolerated.
        let v = compare_text(
            &base,
            &blame_doc(0.1, 99.8, 100.0, 12, 12, 0, 3, false, false),
        )
        .unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn tenant_gate_rederives_the_arbiter_case() {
        let base = healthy_tenant_doc();
        // Fairness collapse: jain below both the absolute floor and the
        // baseline band.
        let v = compare_text(&base, &tenant_doc(0.7, 8.0, 88.0, 2, 3, 0, true)).unwrap();
        assert!(v.iter().any(|m| m.contains("Jain index")), "{v:?}");
        // Jain above the absolute floor but collapsed vs baseline 0.98.
        let v = compare_text(&base, &tenant_doc(0.91, 8.0, 88.0, 2, 3, 0, true)).unwrap();
        assert!(v.iter().any(|m| m.contains("Jain index")), "{v:?}");
        // Worst p99 no longer beats free-for-all's 12 ms.
        let v = compare_text(&base, &tenant_doc(0.98, 13.0, 88.0, 2, 3, 0, true)).unwrap();
        assert!(v.iter().any(|m| m.contains("does not beat")), "{v:?}");
        // Aggregate throughput gives up more than 10% vs 90 graphs/s.
        let v = compare_text(&base, &tenant_doc(0.98, 8.0, 70.0, 2, 3, 0, true)).unwrap();
        assert!(v.iter().any(|m| m.contains("retains less than")), "{v:?}");
        // The arbiter stopped preempting / the burst stopped shedding.
        let v = compare_text(&base, &tenant_doc(0.98, 8.0, 88.0, 0, 3, 0, true)).unwrap();
        assert!(v.iter().any(|m| m.contains("no preemptions")), "{v:?}");
        let v = compare_text(&base, &tenant_doc(0.98, 8.0, 88.0, 2, 0, 0, true)).unwrap();
        assert!(v.iter().any(|m| m.contains("shed nothing")), "{v:?}");
        // Free-for-all preempting means the baseline policy is broken.
        let v = compare_text(&base, &tenant_doc(0.98, 8.0, 88.0, 2, 3, 1, true)).unwrap();
        assert!(v.iter().any(|m| m.contains("free-for-all mode")), "{v:?}");
        // A fresh run that failed its own self-validation always fails.
        let v = compare_text(&base, &tenant_doc(0.98, 8.0, 88.0, 2, 3, 0, false)).unwrap();
        assert!(
            v.iter()
                .any(|m| m.contains("consistency.checksums_match_solo")),
            "{v:?}"
        );
    }

    #[test]
    fn sanitize_gate_demands_exact_violation_sets() {
        // A changed fixture violation count is a digest change.
        let v = compare_text(&sanitize_doc(216, 1, true), &sanitize_doc(216, 2, true)).unwrap();
        assert!(v.iter().any(|m| m.contains("fixtures")), "{v:?}");
        // Shadowed-access coverage shrinking is a digest change too.
        let v = compare_text(&sanitize_doc(216, 1, true), &sanitize_doc(215, 1, true)).unwrap();
        assert!(v.iter().any(|m| m.contains("fuzz")), "{v:?}");
        // A fresh run that failed its own exactness check always fails.
        let v = compare_text(&sanitize_doc(216, 1, true), &sanitize_doc(216, 1, false)).unwrap();
        assert!(v.iter().any(|m| m.contains("fixtures_exact")), "{v:?}");
    }

    #[test]
    fn schema_mismatch_is_a_structural_error() {
        let err = compare_text(&obs_doc(40, 1.0), &par_doc(60.0, 4)).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn obs_gate_demands_exact_equality() {
        let v = compare_text(&obs_doc(40, 123456.0), &obs_doc(41, 123456.0)).unwrap();
        assert!(v.iter().any(|m| m.contains("events.total")), "{v:?}");
        let v = compare_text(&obs_doc(40, 123456.0), &obs_doc(40, 123457.0)).unwrap();
        assert!(v.iter().any(|m| m.contains("makespan_ns")), "{v:?}");
        // A nonzero drop counter fails even if both sides agree on it.
        let v = compare_text(
            &obs_doc_drops(40, 123456.0, 3),
            &obs_doc_drops(40, 123456.0, 3),
        )
        .unwrap();
        assert!(v.iter().any(|m| m.contains("dropped 3 events")), "{v:?}");
    }

    #[test]
    fn real_gate_catches_ratio_drift_and_inversion() {
        // Baseline ratio 4.0; fresh ratio 16.0 breaks the 2.5x band.
        let v = compare_text(&real_doc(8.0, 2.0), &real_doc(16.0, 1.0)).unwrap();
        assert!(v.iter().any(|m| m.contains("slowdown ratio")), "{v:?}");
        // DRAM slower than emulated NVM is always wrong.
        let v = compare_text(&real_doc(8.0, 2.0), &real_doc(2.0, 3.0)).unwrap();
        assert!(v.iter().any(|m| m.contains("below NVM-emulated")), "{v:?}");
        // Mild drift within the band passes.
        let v = compare_text(&real_doc(8.0, 2.0), &real_doc(8.0, 3.0)).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn real_v2_artifacts_pass_and_v1_baselines_still_gate_them() {
        // v2 vs v2, with and without the 3-tier blocks.
        for doc in [real_v2_doc(8.0, 2.0, None, true), healthy_real3_doc()] {
            let v = compare_text(&doc, &doc).expect("well-formed");
            assert!(v.is_empty(), "unexpected violations: {v:?}");
        }
        // Migration shim: the committed v1 baseline gates a v2 fresh.
        let v = compare_text(&real_doc(8.0, 2.0), &real_v2_doc(8.0, 3.0, None, true)).unwrap();
        assert!(v.is_empty(), "{v:?}");
        // ...and still catches a throughput inversion in the v2 fresh.
        let v = compare_text(&real_doc(8.0, 2.0), &real_v2_doc(2.0, 3.0, None, true)).unwrap();
        assert!(v.iter().any(|m| m.contains("below NVM-emulated")), "{v:?}");
        // No reverse shim: a v2 baseline cannot gate a v1 fresh.
        let err =
            compare_text(&real_v2_doc(8.0, 2.0, None, true), &real_doc(8.0, 2.0)).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn real3_sweep_gate_rederives_monotonicity() {
        let base = healthy_real3_doc();
        // A sweep row that worsens as the middle tier grows fails the
        // re-derived monotonicity check (t3*0.75 is the largest-cap row).
        let fresh = base.replace("\"modelled_ns\": 1725000", "\"modelled_ns\": 99725000");
        assert_ne!(base, fresh, "fixture row not found");
        let v = compare_text(&base, &fresh).unwrap();
        assert!(v.iter().any(|m| m.contains("not monotone")), "{v:?}");
        // A deterministic sweep number drifting from the baseline fails
        // even while staying monotone.
        let fresh = base.replace("\"modelled_ns\": 2012500", "\"modelled_ns\": 2012400");
        assert_ne!(base, fresh, "fixture row not found");
        let v = compare_text(&base, &fresh).unwrap();
        assert!(
            v.iter().any(|m| m.contains("sweep[2].modelled_ns")),
            "{v:?}"
        );
    }

    #[test]
    fn real3_gate_rederives_the_middle_tier_case() {
        let base = healthy_real3_doc();
        // 3-tier modelled runtime losing to a 2-tier degeneration fails.
        let v = compare_text(
            &base,
            &real_v2_doc(7.0, 3.0, Some((3.0e6, 2.9e6, 2.9e6, 14, 2)), true),
        )
        .unwrap();
        assert!(v.iter().any(|m| m.contains("worse than 2-tier")), "{v:?}");
        // An empty middle tier, or one without a latency-bound winner, fails.
        let v = compare_text(
            &base,
            &real_v2_doc(7.0, 3.0, Some((2.3e6, 2.9e6, 2.9e6, 0, 0)), true),
        )
        .unwrap();
        assert!(v.iter().any(|m| m.contains("middle tier empty")), "{v:?}");
        let v = compare_text(
            &base,
            &real_v2_doc(7.0, 3.0, Some((2.3e6, 2.9e6, 2.9e6, 14, 0)), true),
        )
        .unwrap();
        assert!(v.iter().any(|m| m.contains("latency-bound")), "{v:?}");
        // The modelled numbers are deterministic: drift vs baseline fails.
        let v = compare_text(
            &base,
            &real_v2_doc(7.0, 3.0, Some((2.2e6, 2.9e6, 2.9e6, 14, 2)), true),
        )
        .unwrap();
        assert!(v.iter().any(|m| m.contains("drifted")), "{v:?}");
        // A fresh run that failed its own self-validation always fails.
        let v = compare_text(
            &base,
            &real_v2_doc(7.0, 3.0, Some((2.3e6, 2.9e6, 2.9e6, 14, 2)), false),
        )
        .unwrap();
        assert!(v.iter().any(|m| m.contains("tahoe_uses_mid_tier")), "{v:?}");
    }

    #[test]
    fn par_gate_catches_overlap_collapse_and_lost_migrations() {
        let v = compare_text(&par_doc(60.0, 4), &par_doc(5.0, 4)).unwrap();
        assert!(v.iter().any(|m| m.contains("collapsed")), "{v:?}");
        let v = compare_text(&par_doc(60.0, 4), &par_doc(60.0, 0)).unwrap();
        assert!(v.iter().any(|m| m.contains("no migrations")), "{v:?}");
        // Retaining 20% of baseline overlap is enough.
        let v = compare_text(&par_doc(60.0, 4), &par_doc(13.0, 4)).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn par_gate_enforces_scaling_on_multicore() {
        let healthy = par_scaling_doc(4, &[(1, 100_000.0), (2, 55_000.0), (4, 30_000.0)]);
        // A healthy ladder (s2 = 1.82x, s4 = 3.33x) passes cleanly.
        let v = compare_text(&healthy, &healthy).unwrap();
        assert!(v.is_empty(), "{v:?}");
        // Injected regression: 2-worker speedup collapses to 1.11x.
        let slow2 = par_scaling_doc(4, &[(1, 100_000.0), (2, 90_000.0), (4, 30_000.0)]);
        let v = compare_text(&healthy, &slow2).unwrap();
        assert!(
            v.iter().any(|m| m.contains("below the 1.3x floor")),
            "{v:?}"
        );
        // Injected regression: scaling goes backwards past 2 workers
        // (s2 = 2.0x but s4 = 1.25x).
        let sag4 = par_scaling_doc(4, &[(1, 100_000.0), (2, 50_000.0), (4, 80_000.0)]);
        let v = compare_text(&healthy, &sag4).unwrap();
        assert!(v.iter().any(|m| m.contains("speedup degrades")), "{v:?}");
        // Mild sag within the 0.9x slack band passes.
        let flat = par_scaling_doc(4, &[(1, 100_000.0), (2, 50_000.0), (4, 52_000.0)]);
        let v = compare_text(&healthy, &flat).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn par_gate_skips_scaling_where_cores_are_absent() {
        let healthy = par_scaling_doc(4, &[(1, 100_000.0), (2, 55_000.0), (4, 30_000.0)]);
        // A 1-CPU box oversubscribes the spin-paced compute: terrible
        // "speedups" are expected and must not fail the gate.
        let single = par_scaling_doc(1, &[(1, 100_000.0), (2, 190_000.0), (4, 390_000.0)]);
        let v = compare_text(&healthy, &single).unwrap();
        assert!(v.is_empty(), "{v:?}");
        // Worker counts beyond the core count are exempt too: with 2
        // cpus the 4-worker sag is ignored, the in-core band enforced.
        let two = par_scaling_doc(2, &[(1, 100_000.0), (2, 55_000.0), (4, 120_000.0)]);
        let v = compare_text(&healthy, &two).unwrap();
        assert!(v.is_empty(), "{v:?}");
        // Legacy artifacts without a machine section skip the band.
        let v = compare_text(&par_doc(60.0, 4), &par_doc(60.0, 4)).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn audit_gate_catches_model_and_overhead_regressions() {
        let base = audit_doc(40.0, 100.0, 1.0);
        // MAPE blowing past max(2x, +25) fails.
        let v = compare_text(&base, &audit_doc(90.0, 100.0, 1.0)).unwrap();
        assert!(v.iter().any(|m| m.contains("MAPE")), "{v:?}");
        // ...but headroom within the band passes.
        let v = compare_text(&base, &audit_doc(64.0, 100.0, 1.0)).unwrap();
        assert!(v.is_empty(), "{v:?}");
        // Sign agreement collapsing fails.
        let v = compare_text(&base, &audit_doc(40.0, 40.0, 1.0)).unwrap();
        assert!(v.iter().any(|m| m.contains("sign agreement")), "{v:?}");
        // Recorder overhead over the ceiling fails.
        let v = compare_text(&base, &audit_doc(40.0, 100.0, 7.5)).unwrap();
        assert!(v.iter().any(|m| m.contains("self-overhead")), "{v:?}");
    }

    #[test]
    fn missing_fields_are_structural_errors() {
        let err = compare_text(
            r#"{"schema": "tahoe-bench-audit/v1"}"#,
            r#"{"schema": "tahoe-bench-audit/v1"}"#,
        )
        .unwrap_err();
        assert!(err.contains("missing field"), "{err}");
    }
}
