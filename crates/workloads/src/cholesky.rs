//! Tiled right-looking Cholesky factorization (POTRF/TRSM/SYRK/GEMM).
//!
//! The canonical task-parallel benchmark: four task classes with very
//! different compute/memory ratios and a rich, irregular DAG — exactly
//! the setting where per-class profiling pays off.

use tahoe_core::{App, AppBuilder};

use crate::spec::{filtered_lines, Scale};

/// In-tile cache reuse of the BLAS-3 kernels.
const TILE_REUSE: f64 = 0.6;

/// Build the Cholesky workload: `iters` factorizations of an `nt × nt`
/// tile matrix (lower triangle).
pub fn app(scale: Scale) -> App {
    let nt = scale.tiles();
    let ts = scale.block_bytes();
    let iters = scale.iterations();
    let mut b = AppBuilder::new("cholesky");

    // Lower-triangle tiles only.
    let mut tiles = vec![None; nt * nt];
    for i in 0..nt {
        for j in 0..=i {
            tiles[i * nt + j] = Some(b.object(&format!("T{i}{j}"), ts));
        }
    }
    let tile = |i: usize, j: usize| tiles[i * nt + j].expect("lower-triangle tile");
    let ln = filtered_lines(ts, TILE_REUSE);
    for i in 0..nt {
        for j in 0..=i {
            // Tiles near the diagonal are touched by more kernels.
            let touches = (nt - j) as f64 * iters as f64;
            b.set_est_refs(tile(i, j), 2.0 * ln as f64 * touches);
        }
    }

    let potrf = b.class("potrf");
    let trsm = b.class("trsm");
    let syrk = b.class("syrk");
    let gemm = b.class("gemm");

    for w in 0..iters {
        for k in 0..nt {
            // POTRF on the diagonal tile: latency-leaning (dependent
            // panel factorization), heavier compute.
            b.task(potrf)
                .access(
                    tile(k, k),
                    tahoe_taskrt::AccessMode::ReadWrite,
                    tahoe_hms::AccessProfile::new(ln, ln / 2, 2.0),
                )
                .compute_us(40.0)
                .submit();
            for i in (k + 1)..nt {
                b.task(trsm)
                    .read_streaming(tile(k, k), ln)
                    .update_streaming(tile(i, k), ln)
                    .compute_us(25.0)
                    .submit();
            }
            for i in (k + 1)..nt {
                b.task(syrk)
                    .read_streaming(tile(i, k), ln)
                    .update_streaming(tile(i, i), ln)
                    .compute_us(20.0)
                    .submit();
                for j in (k + 1)..i {
                    b.task(gemm)
                        .read_streaming(tile(i, k), ln)
                        .read_streaming(tile(j, k), ln)
                        .update_streaming(tile(i, j), ln)
                        .compute_us(25.0)
                        .submit();
                }
            }
        }
        if w + 1 < iters {
            b.next_window();
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_taskrt::TaskId;

    #[test]
    fn shape_and_classes() {
        let app = app(Scale::Test);
        let nt = Scale::Test.tiles();
        assert_eq!(app.objects.len(), nt * (nt + 1) / 2);
        assert_eq!(app.graph.class_count(), 4);
        app.validate().unwrap();
        // Task count per factorization: nt potrf + Σ(nt-k-1) trsm + syrk
        // + gemms.
        let per_iter = app.graph.len() / Scale::Test.iterations() as usize;
        // nt potrf + nt(nt-1)/2 trsm + nt(nt-1)/2 syrk + gemms.
        assert!(per_iter >= nt * nt);
    }

    #[test]
    fn trsm_depends_on_its_potrf() {
        let app = app(Scale::Test);
        // Task 0 is potrf(k=0); task 1 is trsm(i=1,k=0) reading T00.
        assert!(app.graph.preds(TaskId(1)).contains(&TaskId(0)));
    }

    #[test]
    fn dag_has_parallel_width() {
        let app = app(Scale::Test);
        let cp = app.graph.critical_path_ns(|t| t.compute_ns);
        let work = app.graph.total_work_ns(|t| t.compute_ns);
        assert!(work > 1.5 * cp);
    }
}
