//! Common workload scaling and profile helpers.

use tahoe_hms::CACHELINE;

/// Workload scale classes.
///
/// `Test` keeps graphs small enough for unit tests; `Bench` is the
/// evaluation scale used by the experiment harness (footprints tens of
/// MB against DRAM budgets of a few MB, matching the paper's
/// DRAM≪footprint regime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small: fast unit tests.
    Test,
    /// Evaluation scale.
    Bench,
}

impl Scale {
    /// Generic block size in bytes.
    pub fn block_bytes(self) -> u64 {
        match self {
            Scale::Test => 64 << 10,
            Scale::Bench => 256 << 10,
        }
    }

    /// Generic block count per array.
    pub fn blocks(self) -> usize {
        match self {
            Scale::Test => 4,
            Scale::Bench => 16,
        }
    }

    /// Number of outer iterations (windows).
    pub fn iterations(self) -> u32 {
        match self {
            Scale::Test => 4,
            Scale::Bench => 10,
        }
    }

    /// Tile count per matrix dimension for the factorization kernels.
    pub fn tiles(self) -> usize {
        match self {
            Scale::Test => 3,
            Scale::Bench => 6,
        }
    }
}

/// Cache lines in `bytes` of data.
pub fn lines(bytes: u64) -> u64 {
    bytes / CACHELINE
}

/// Main-memory lines of a streamed pass over `bytes`, after a cache
/// filters `reuse` of the traffic (`reuse = 0` ⇒ every line misses).
pub fn filtered_lines(bytes: u64, reuse: f64) -> u64 {
    (lines(bytes) as f64 * (1.0 - reuse).clamp(0.0, 1.0)).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Bench.block_bytes() > Scale::Test.block_bytes());
        assert!(Scale::Bench.blocks() >= Scale::Test.blocks());
        assert!(Scale::Bench.iterations() > Scale::Test.iterations());
    }

    #[test]
    fn line_math() {
        assert_eq!(lines(6400), 100);
        assert_eq!(filtered_lines(6400, 0.0), 100);
        assert_eq!(filtered_lines(6400, 0.75), 25);
        assert_eq!(filtered_lines(6400, 1.0), 0);
        // Clamped.
        assert_eq!(filtered_lines(6400, 2.0), 0);
    }
}
