//! SparseLU (BOTS-style): blocked LU over a sparse block matrix.
//!
//! A deterministic sparsity mask leaves some blocks empty, so the task
//! DAG is irregular and per-window work varies — the workload-variation
//! case the runtime's adaptivity targets.

use tahoe_core::{App, AppBuilder};

use crate::spec::{filtered_lines, Scale};

const TILE_REUSE: f64 = 0.5;

/// Deterministic block-sparsity mask (BOTS seeds ~60% density).
fn present(i: usize, j: usize) -> bool {
    i == j || !(i * 7 + j * 3).is_multiple_of(3)
}

/// Build the SparseLU workload.
pub fn app(scale: Scale) -> App {
    let nt = scale.tiles();
    let ts = scale.block_bytes();
    let iters = scale.iterations();
    let mut b = AppBuilder::new("sparselu");

    let mut blocks = vec![None; nt * nt];
    for i in 0..nt {
        for j in 0..nt {
            if present(i, j) {
                blocks[i * nt + j] = Some(b.object(&format!("L{i}{j}"), ts));
            }
        }
    }
    let blk = |i: usize, j: usize| blocks[i * nt + j];
    let ln = filtered_lines(ts, TILE_REUSE);
    for i in 0..nt {
        for j in 0..nt {
            if let Some(o) = blk(i, j) {
                b.set_est_refs(o, 2.0 * ln as f64 * nt as f64 * iters as f64);
            }
        }
    }

    let lu0 = b.class("lu0");
    let fwd = b.class("fwd");
    let bdiv = b.class("bdiv");
    let bmod = b.class("bmod");

    for w in 0..iters {
        for k in 0..nt {
            let kk = blk(k, k).expect("diagonal blocks always present");
            b.task(lu0)
                .access(
                    kk,
                    tahoe_taskrt::AccessMode::ReadWrite,
                    tahoe_hms::AccessProfile::new(ln, ln / 2, 2.0),
                )
                .compute_us(35.0)
                .submit();
            for j in (k + 1)..nt {
                if let Some(okj) = blk(k, j) {
                    b.task(fwd)
                        .read_streaming(kk, ln)
                        .update_streaming(okj, ln)
                        .compute_us(20.0)
                        .submit();
                }
            }
            for i in (k + 1)..nt {
                if let Some(oik) = blk(i, k) {
                    b.task(bdiv)
                        .read_streaming(kk, ln)
                        .update_streaming(oik, ln)
                        .compute_us(20.0)
                        .submit();
                }
            }
            for i in (k + 1)..nt {
                for j in (k + 1)..nt {
                    if let (Some(oik), Some(okj), Some(oij)) = (blk(i, k), blk(k, j), blk(i, j)) {
                        b.task(bmod)
                            .read_streaming(oik, ln)
                            .read_streaming(okj, ln)
                            .update_streaming(oij, ln)
                            .compute_us(25.0)
                            .submit();
                    }
                }
            }
        }
        if w + 1 < iters {
            b.next_window();
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_leaves_holes_but_keeps_diagonal() {
        let nt = Scale::Test.tiles();
        let mut missing = 0;
        for i in 0..nt {
            assert!(present(i, i));
            for j in 0..nt {
                if !present(i, j) {
                    missing += 1;
                }
            }
        }
        assert!(missing > 0, "mask should drop some blocks");
    }

    #[test]
    fn shape() {
        let app = app(Scale::Test);
        let nt = Scale::Test.tiles();
        assert!(app.objects.len() < nt * nt);
        assert!(app.objects.len() >= nt);
        assert_eq!(app.graph.class_count(), 4);
        app.validate().unwrap();
    }

    #[test]
    fn fwd_depends_on_lu0() {
        let app = app(Scale::Test);
        // Task 0 is lu0(k=0); the first fwd/bdiv task must depend on it.
        let t1 = tahoe_taskrt::TaskId(1);
        assert!(app.graph.preds(t1).contains(&tahoe_taskrt::TaskId(0)));
    }
}
