//! Block STREAM triad: `a[i] = b[i] + s·c[i]`, one task per block.
//!
//! The purest bandwidth-sensitive workload: every block is touched once
//! per iteration with hardware-prefetchable streams and no reuse.

use tahoe_core::{App, AppBuilder};

use crate::spec::{lines, Scale};

/// Build the triad workload.
pub fn app(scale: Scale) -> App {
    let nb = scale.blocks();
    let bs = scale.block_bytes();
    let iters = scale.iterations();
    let mut b = AppBuilder::new("stream");

    let mut a_blocks = Vec::with_capacity(nb);
    let mut b_blocks = Vec::with_capacity(nb);
    let mut c_blocks = Vec::with_capacity(nb);
    for i in 0..nb {
        a_blocks.push(b.object(&format!("a{i}"), bs));
        b_blocks.push(b.object(&format!("b{i}"), bs));
        c_blocks.push(b.object(&format!("c{i}"), bs));
    }
    // Compiler estimate: every block is fully referenced every iteration.
    let per_iter = lines(bs) as f64;
    for i in 0..nb {
        b.set_est_refs(a_blocks[i], per_iter * iters as f64);
        b.set_est_refs(b_blocks[i], per_iter * iters as f64);
        b.set_est_refs(c_blocks[i], per_iter * iters as f64);
    }

    let triad = b.class("triad");
    let ln = lines(bs);
    for w in 0..iters {
        for i in 0..nb {
            b.task(triad)
                .read_streaming(b_blocks[i], ln)
                .read_streaming(c_blocks[i], ln)
                .write_streaming(a_blocks[i], ln)
                .compute_us(3.0)
                .submit();
        }
        if w + 1 < iters {
            b.next_window();
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let app = app(Scale::Test);
        let nb = Scale::Test.blocks();
        assert_eq!(app.objects.len(), 3 * nb);
        assert_eq!(app.graph.len(), nb * Scale::Test.iterations() as usize);
        assert_eq!(app.windows(), Scale::Test.iterations());
        app.validate().unwrap();
    }

    #[test]
    fn blocks_are_independent_within_a_window() {
        let app = app(Scale::Test);
        // All first-window tasks are roots.
        let roots = app.graph.roots();
        assert_eq!(roots.len(), Scale::Test.blocks());
    }

    #[test]
    fn iterations_chain_through_blocks() {
        let app = app(Scale::Test);
        let nb = Scale::Test.blocks();
        // Task nb (block 0, window 1) must depend on task 0 (WAW on a0).
        let t = app.graph.task(tahoe_taskrt::TaskId(nb as u32));
        assert_eq!(t.window, 1);
        assert!(!app.graph.preds(t.id).is_empty());
    }
}
