//! Tiled dense GEMM: `C[i][j] += A[i][k]·B[k][j]`, one task per
//! (i, j, k) tile triple.
//!
//! Compute-heavy with good cache reuse inside a tile (most of a tile's
//! arithmetic hits cache), so the memory traffic per task is a filtered
//! fraction of the tile bytes: a *mixed*-sensitivity workload where data
//! placement matters less per access but the volume is large.

use tahoe_core::{App, AppBuilder};

use crate::spec::{filtered_lines, Scale};

/// Fraction of tile traffic absorbed by the cache within one task.
const TILE_REUSE: f64 = 0.7;

/// Build the tiled-GEMM workload.
pub fn app(scale: Scale) -> App {
    let nt = scale.tiles();
    let ts = scale.block_bytes();
    let iters = scale.iterations();
    let mut b = AppBuilder::new("gemm");

    let idx = |i: usize, j: usize| i * nt + j;
    let mut a = Vec::with_capacity(nt * nt);
    let mut bb = Vec::with_capacity(nt * nt);
    let mut c = Vec::with_capacity(nt * nt);
    for i in 0..nt {
        for j in 0..nt {
            a.push(b.object(&format!("A{i}{j}"), ts));
            bb.push(b.object(&format!("B{i}{j}"), ts));
            c.push(b.object(&format!("C{i}{j}"), ts));
        }
    }
    let ln = filtered_lines(ts, TILE_REUSE);
    // A and B tiles are read nt times per iteration; C updated nt times.
    for i in 0..nt {
        for j in 0..nt {
            let reads = (ln * nt as u64 * iters as u64) as f64;
            b.set_est_refs(a[idx(i, j)], reads);
            b.set_est_refs(bb[idx(i, j)], reads);
            b.set_est_refs(c[idx(i, j)], 2.0 * reads);
        }
    }

    let gemm = b.class("gemm");
    for w in 0..iters {
        for i in 0..nt {
            for j in 0..nt {
                for k in 0..nt {
                    b.task(gemm)
                        .read_streaming(a[idx(i, k)], ln)
                        .read_streaming(bb[idx(k, j)], ln)
                        .update_streaming(c[idx(i, j)], ln)
                        .compute_us(25.0)
                        .submit();
                }
            }
        }
        if w + 1 < iters {
            b.next_window();
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let app = app(Scale::Test);
        let nt = Scale::Test.tiles();
        assert_eq!(app.objects.len(), 3 * nt * nt);
        assert_eq!(
            app.graph.len(),
            nt * nt * nt * Scale::Test.iterations() as usize
        );
        app.validate().unwrap();
    }

    #[test]
    fn k_loop_chains_on_c_tile() {
        let app = app(Scale::Test);
        let nt = Scale::Test.tiles() as u32;
        // Tasks 0..nt all update C[0][0]: they form a chain.
        for k in 1..nt {
            let preds = app.graph.preds(tahoe_taskrt::TaskId(k));
            assert!(preds.contains(&tahoe_taskrt::TaskId(k - 1)));
        }
    }

    #[test]
    fn distinct_ij_tiles_are_parallel() {
        let app = app(Scale::Test);
        let nt = Scale::Test.tiles() as u32;
        // First task of (i=0,j=1) block: id nt (k=0). Its preds must not
        // include any (0,0,k) task.
        let preds = app.graph.preds(tahoe_taskrt::TaskId(nt));
        assert!(preds.is_empty(), "{preds:?}");
    }
}
