//! Task-parallel evaluation workloads.
//!
//! The paper evaluates on NPB/BOTS-class HPC kernels expressed as
//! task-parallel programs. This crate provides ten workload generators
//! spanning the sensitivity axes the runtime must handle:
//!
//! | workload | pattern | NVM sensitivity |
//! |----------|---------|-----------------|
//! | [`stream`]   | block triad                      | bandwidth |
//! | [`stencil`]  | 2-D Jacobi heat, halo exchange   | bandwidth |
//! | [`gemm`]     | tiled dense matrix multiply      | mixed (compute-heavy) |
//! | [`cholesky`] | tiled right-looking factorization| mixed, rich DAG |
//! | [`lu`]       | SparseLU (BOTS-style), sparse blocks | mixed, irregular |
//! | [`fft`]      | staged butterfly + big read-only twiddle table | bandwidth + chunking showcase |
//! | [`sort`]     | task mergesort, ping-pong buffers| bandwidth |
//! | [`health`]   | hierarchical agent simulation    | latency (pointer chasing) |
//! | [`cg`]       | conjugate gradient (SpMV + vectors) | mixed: stream A, gather x |
//! | [`nqueens`]  | backtracking search              | compute-bound control |
//!
//! Every generator emits an [`App`]: per-block data objects (so the
//! dependence derivation yields real task DAGs), ground-truth access
//! profiles per task, compiler-style reference estimates for the
//! initial-placement heuristic, and one window per outer iteration.

// Workload generators index parallel block arrays by block number; the
// index *is* the domain decomposition, so range loops are the clearer
// idiom here.
#![allow(clippy::needless_range_loop)]
// Workload generators only build task graphs and access declarations;
// the kernels that touch memory live in tahoe-core.
#![forbid(unsafe_code)]

pub mod cg;
pub mod cholesky;
pub mod fft;
#[cfg(feature = "fixtures")]
pub mod fixtures;
pub mod health;
pub mod lu;
pub mod nqueens;
pub mod phased;
pub mod rwmix;
pub mod sort;
pub mod spec;
pub mod stencil;
pub mod stream;

pub use spec::Scale;
use tahoe_core::App;

/// Every workload at `scale`, as (name, app) pairs in a fixed order.
pub fn all_workloads(scale: Scale) -> Vec<App> {
    vec![
        stream::app(scale),
        stencil::app(scale),
        gemm_app(scale),
        cholesky::app(scale),
        lu::app(scale),
        fft::app(scale),
        sort::app(scale),
        health::app(scale),
        cg::app(scale),
        nqueens::app(scale),
        phased::app(scale),
        rwmix::app(scale),
    ]
}

/// The tiled-GEMM workload (re-exported through a module below).
pub fn gemm_app(scale: Scale) -> App {
    gemm::app(scale)
}

pub mod gemm;

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_core::prelude::*;

    #[test]
    fn all_workloads_validate_and_have_structure() {
        for app in all_workloads(Scale::Test) {
            app.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", app.name));
            assert!(app.graph.len() > 4, "{} too small", app.name);
            assert!(app.windows() >= 2, "{} needs windows", app.name);
            assert!(app.footprint() > 0);
            // Real parallelism: the DAG must not be a single chain.
            let cp = app.graph.critical_path_ns(|t| t.compute_ns.max(1.0));
            let work = app.graph.total_work_ns(|t| t.compute_ns.max(1.0));
            assert!(
                work > 1.5 * cp,
                "{}: no parallelism (work {work}, cp {cp})",
                app.name
            );
        }
    }

    #[test]
    fn workload_names_are_unique() {
        let apps = all_workloads(Scale::Test);
        let mut names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn every_workload_runs_under_every_policy() {
        let rt = Runtime::new(
            Platform::emulated_bw(0.5, 2 << 20, 1 << 30).unwrap(),
            RuntimeConfig::default(),
        );
        for app in all_workloads(Scale::Test) {
            for policy in [
                PolicyKind::DramOnly,
                PolicyKind::NvmOnly,
                PolicyKind::tahoe(),
            ] {
                let rep = rt.run(&app, &policy);
                assert_eq!(
                    rep.tasks,
                    app.graph.len() as u64,
                    "{} under {}",
                    app.name,
                    rep.policy
                );
            }
        }
    }
}
