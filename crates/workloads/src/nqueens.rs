//! N-Queens backtracking search: the compute-bound control workload.
//!
//! Tasks explore disjoint subtrees with tiny per-task state. Data
//! placement should not matter here — a data-management runtime must not
//! slow such programs down (the "do no harm" check).

use tahoe_core::{App, AppBuilder};

use crate::spec::Scale;

/// Build the N-Queens workload.
pub fn app(scale: Scale) -> App {
    let subtrees = scale.blocks() * 4;
    let iters = scale.iterations();
    let mut b = AppBuilder::new("nqueens");

    // Small per-subtree scratch plus a shared read-only board template.
    let board = b.object("board", 4096);
    b.set_est_refs(board, 64.0 * subtrees as f64 * iters as f64);
    let mut scratch = Vec::with_capacity(subtrees);
    for i in 0..subtrees {
        scratch.push(b.object(&format!("scratch{i}"), 8192));
        b.set_est_refs(scratch[i], 128.0 * iters as f64);
    }
    let tally = b.object("tally", 4096);
    b.set_est_refs(tally, (subtrees as u64 * iters as u64) as f64);

    let explore = b.class("explore");
    let reduce = b.class("reduce");
    for w in 0..iters {
        for i in 0..subtrees {
            b.task(explore)
                .read_streaming(board, 16)
                .update_streaming(scratch[i], 64)
                .compute_us(60.0)
                .submit();
        }
        // Reduction over subtree counts.
        let mut t = b.task(reduce).update_streaming(tally, 16).compute_us(3.0);
        for i in 0..subtrees {
            t = t.read_streaming(scratch[i], 4);
        }
        t.submit();
        if w + 1 < iters {
            b.next_window();
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_core::prelude::*;

    #[test]
    fn shape() {
        let app = app(Scale::Test);
        assert_eq!(app.objects.len(), Scale::Test.blocks() * 4 + 2);
        app.validate().unwrap();
    }

    #[test]
    fn reduction_joins_all_subtrees() {
        let app = app(Scale::Test);
        let subtrees = Scale::Test.blocks() * 4;
        let reduce_id = tahoe_taskrt::TaskId(subtrees as u32);
        assert_eq!(app.graph.preds(reduce_id).len(), subtrees);
    }

    #[test]
    fn nvm_barely_hurts_compute_bound_work() {
        let app = app(Scale::Test);
        let rt = Runtime::new(
            Platform::emulated_bw(0.25, 1 << 18, 1 << 30).unwrap(),
            RuntimeConfig::default(),
        );
        let dram = rt.run(&app, &PolicyKind::DramOnly);
        let nvm = rt.run(&app, &PolicyKind::NvmOnly);
        let gap = nvm.makespan_ns / dram.makespan_ns;
        assert!(gap < 1.25, "compute-bound gap should be small, got {gap}");
    }
}
