//! Conjugate-gradient solver: SpMV plus vector updates per iteration.
//!
//! The matrix blocks stream (bandwidth-heavy, huge); the `x`-vector
//! gather inside SpMV is dependent indexing (latency-leaning); the
//! vector updates are light streams. Mixed sensitivity with one clear
//! winner for DRAM: the gathered vector.

use tahoe_core::{App, AppBuilder};

use crate::spec::{lines, Scale};

/// Build the CG workload.
pub fn app(scale: Scale) -> App {
    let nb = scale.blocks();
    let bs = scale.block_bytes();
    let iters = scale.iterations();
    let mut b = AppBuilder::new("cg");

    // Matrix block-rows are 4× the vector block size (sparse but big).
    let mut a_rows = Vec::with_capacity(nb);
    for i in 0..nb {
        a_rows.push(b.object(&format!("A{i}"), bs * 4));
    }
    let mut x = Vec::with_capacity(nb);
    let mut p = Vec::with_capacity(nb);
    let mut q = Vec::with_capacity(nb);
    let mut r = Vec::with_capacity(nb);
    for i in 0..nb {
        x.push(b.object(&format!("x{i}"), bs / 4));
        p.push(b.object(&format!("p{i}"), bs / 4));
        q.push(b.object(&format!("q{i}"), bs / 4));
        r.push(b.object(&format!("r{i}"), bs / 4));
    }
    let a_ln = lines(bs * 4);
    let v_ln = lines(bs / 4);
    for i in 0..nb {
        b.set_est_refs(a_rows[i], (a_ln * iters as u64) as f64);
        // The gathered vector blocks are touched by every row task.
        b.set_est_refs(p[i], (v_ln * nb as u64 * iters as u64) as f64);
        b.set_est_refs(x[i], (v_ln * iters as u64 * 2) as f64);
        b.set_est_refs(q[i], (v_ln * iters as u64 * 2) as f64);
        b.set_est_refs(r[i], (v_ln * iters as u64 * 2) as f64);
    }

    let spmv = b.class("spmv");
    let axpy = b.class("axpy");
    let dot = b.class("dot");

    for w in 0..iters {
        // q = A·p — row tasks stream their block row and gather p.
        for i in 0..nb {
            let mut t = b
                .task(spmv)
                .read_streaming(a_rows[i], a_ln)
                .write_streaming(q[i], v_ln)
                .compute_us(10.0);
            // Gather three neighbouring p-blocks with dependent indexing.
            for off in [0usize, 1, 2] {
                let j = (i + off) % nb;
                t = t.read_chasing(p[j], v_ln / 2);
            }
            t.submit();
        }
        // x += α·p ; r −= α·q (axpy per block).
        for i in 0..nb {
            b.task(axpy)
                .read_streaming(p[i], v_ln)
                .update_streaming(x[i], v_ln)
                .compute_us(2.0)
                .submit();
            b.task(axpy)
                .read_streaming(q[i], v_ln)
                .update_streaming(r[i], v_ln)
                .compute_us(2.0)
                .submit();
        }
        // ρ = r·r, then p = r + β·p (per block; dot reads r, update p).
        for i in 0..nb {
            b.task(dot)
                .read_streaming(r[i], v_ln)
                .update_streaming(p[i], v_ln)
                .compute_us(2.0)
                .submit();
        }
        if w + 1 < iters {
            b.next_window();
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let app = app(Scale::Test);
        let nb = Scale::Test.blocks();
        assert_eq!(app.objects.len(), 5 * nb);
        assert_eq!(app.graph.class_count(), 3);
        app.validate().unwrap();
    }

    #[test]
    fn spmv_tasks_parallel_within_window() {
        let app = app(Scale::Test);
        let nb = Scale::Test.blocks() as u32;
        let roots = app.graph.roots();
        // Every first-window SpMV task is a root (plus the x-axpy tasks,
        // which have no upstream writers either).
        for i in 0..nb {
            assert!(roots.contains(&tahoe_taskrt::TaskId(i)));
        }
        assert_eq!(roots.len(), 2 * nb as usize);
    }

    #[test]
    fn p_update_depends_on_spmv_gathers() {
        let app = app(Scale::Test);
        let nb = Scale::Test.blocks() as u32;
        // The dot/p-update task for block 0 (id 3·nb) writes p0, which
        // spmv tasks read (WAR).
        let t = tahoe_taskrt::TaskId(3 * nb);
        let preds = app.graph.preds(t);
        assert!(
            preds.iter().any(|p| p.0 < nb),
            "p-update must WAR-depend on spmv gathers: {preds:?}"
        );
    }

    #[test]
    fn matrix_dominates_footprint() {
        let app = app(Scale::Test);
        let a_bytes: u64 = app
            .objects
            .iter()
            .filter(|o| o.name.starts_with('A'))
            .map(|o| o.size)
            .sum();
        assert!(a_bytes * 2 > app.footprint());
    }
}
