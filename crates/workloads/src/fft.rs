//! Staged FFT over blocks, with a large read-only twiddle table.
//!
//! Each of the `log2(nb)` stages combines block pairs (butterflies).
//! Every task also reads a slice of a twiddle-factor table that is one
//! big flat array — deliberately larger than typical DRAM budgets, so
//! this is the workload where *large-object chunking* pays (the paper's
//! FT observation).

use tahoe_core::{App, AppBuilder};

use crate::spec::{lines, Scale};

/// Build the FFT workload.
pub fn app(scale: Scale) -> App {
    let nb = scale.blocks().next_power_of_two();
    let bs = scale.block_bytes();
    let iters = scale.iterations();
    let mut b = AppBuilder::new("fft");

    let mut blocks = Vec::with_capacity(nb);
    for i in 0..nb {
        blocks.push(b.object(&format!("x{i}"), bs));
    }
    // The twiddle table: one flat, read-only, *chunkable* array sized at
    // half the whole dataset.
    let twiddle_size = (nb as u64 * bs) / 2;
    let twiddle = b.object_chunkable("twiddle", twiddle_size);

    let stages = nb.trailing_zeros() as usize;
    let ln = lines(bs);
    let tw_ln = lines(twiddle_size) / 2; // heavy twiddle reuse per task
    for i in 0..nb {
        b.set_est_refs(blocks[i], (2 * ln * stages as u64 * iters as u64) as f64);
    }
    b.set_est_refs(
        twiddle,
        (tw_ln * nb as u64 * stages as u64 * iters as u64) as f64,
    );

    let butterfly = b.class("butterfly");
    for w in 0..iters {
        for s in 0..stages {
            let stride = 1usize << s;
            let mut done = vec![false; nb];
            for i in 0..nb {
                if done[i] {
                    continue;
                }
                let j = i ^ stride;
                done[i] = true;
                done[j] = true;
                b.task(butterfly)
                    .update_streaming(blocks[i], ln)
                    .update_streaming(blocks[j], ln)
                    .read_streaming(twiddle, tw_ln)
                    .compute_us(8.0)
                    .submit();
            }
        }
        if w + 1 < iters {
            b.next_window();
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let app = app(Scale::Test);
        let nb = Scale::Test.blocks().next_power_of_two();
        let stages = nb.trailing_zeros() as usize;
        assert_eq!(app.objects.len(), nb + 1);
        assert_eq!(
            app.graph.len(),
            (nb / 2) * stages * Scale::Test.iterations() as usize
        );
        app.validate().unwrap();
    }

    #[test]
    fn twiddle_is_chunkable_and_large() {
        let app = app(Scale::Test);
        let tw = app.objects.last().unwrap();
        assert!(tw.chunkable);
        assert!(tw.size >= app.objects[0].size);
    }

    #[test]
    fn stage_one_tasks_depend_on_stage_zero() {
        let app = app(Scale::Test);
        let nb = Scale::Test.blocks().next_power_of_two();
        let first_s1 = tahoe_taskrt::TaskId((nb / 2) as u32);
        assert!(!app.graph.preds(first_s1).is_empty());
    }

    #[test]
    fn twiddle_reads_do_not_serialize_butterflies() {
        let app = app(Scale::Test);
        // All stage-0 tasks are roots despite sharing the twiddle table.
        let nb = Scale::Test.blocks().next_power_of_two();
        assert_eq!(app.graph.roots().len(), nb / 2);
    }
}
