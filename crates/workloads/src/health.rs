//! Health-like hierarchical agent simulation (BOTS `health`).
//!
//! Villages hold linked patient lists; each timestep every village task
//! walks its list (pure pointer chasing) and occasionally consults a
//! shared hospital structure (also chased). The latency-sensitive
//! workload: bandwidth is nearly irrelevant, NVM read latency is
//! everything.

use tahoe_core::{App, AppBuilder};

use crate::spec::{lines, Scale};

/// Build the health workload.
pub fn app(scale: Scale) -> App {
    let villages = scale.blocks() * 2;
    let vs = scale.block_bytes() / 2;
    let iters = scale.iterations();
    let mut b = AppBuilder::new("health");

    let mut v = Vec::with_capacity(villages);
    for i in 0..villages {
        v.push(b.object(&format!("village{i}"), vs));
    }
    let hospital = b.object("hospital", vs * 4);

    let chase_ln = lines(vs) / 2; // half the lines walked per step
    for i in 0..villages {
        b.set_est_refs(v[i], (chase_ln * iters as u64) as f64);
    }
    b.set_est_refs(
        hospital,
        (lines(vs * 4) / 8 * villages as u64 * iters as u64) as f64,
    );

    let step = b.class("village_step");
    for w in 0..iters {
        for i in 0..villages {
            b.task(step)
                .access(
                    v[i],
                    tahoe_taskrt::AccessMode::ReadWrite,
                    tahoe_hms::AccessProfile::new(chase_ln, chase_ln / 8, 1.0),
                )
                .read_chasing(hospital, lines(vs * 4) / 8)
                .compute_us(2.0)
                .submit();
        }
        if w + 1 < iters {
            b.next_window();
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_core::prelude::*;

    #[test]
    fn shape() {
        let app = app(Scale::Test);
        assert_eq!(app.objects.len(), Scale::Test.blocks() * 2 + 1);
        app.validate().unwrap();
    }

    #[test]
    fn village_steps_are_parallel_within_a_window() {
        let app = app(Scale::Test);
        assert_eq!(app.graph.roots().len(), Scale::Test.blocks() * 2);
    }

    #[test]
    fn latency_sensitive_shape() {
        // The app must slow down far more under latency scaling than
        // bandwidth scaling.
        let app_t = app(Scale::Test);
        let cfg = RuntimeConfig::default();
        let dram_cap = 1 << 18;
        let lat = Runtime::new(
            Platform::emulated_lat(4.0, dram_cap, 1 << 30).unwrap(),
            cfg.clone(),
        );
        let bw = Runtime::new(Platform::emulated_bw(0.25, dram_cap, 1 << 30).unwrap(), cfg);
        let lat_gap = lat.run(&app_t, &PolicyKind::NvmOnly).makespan_ns
            / lat.run(&app_t, &PolicyKind::DramOnly).makespan_ns;
        let bw_gap = bw.run(&app_t, &PolicyKind::NvmOnly).makespan_ns
            / bw.run(&app_t, &PolicyKind::DramOnly).makespan_ns;
        assert!(
            lat_gap > bw_gap,
            "health must be latency-sensitive: lat {lat_gap:.2} vs bw {bw_gap:.2}"
        );
    }
}
