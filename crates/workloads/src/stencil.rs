//! 2-D Jacobi heat stencil over row blocks with double buffering.
//!
//! Each task updates one row block from its neighbours in the previous
//! buffer: bandwidth-sensitive with halo-induced dependences — the
//! classic HPC sweep.

use tahoe_core::{App, AppBuilder};

use crate::spec::{lines, Scale};

/// Build the stencil workload.
pub fn app(scale: Scale) -> App {
    let nb = scale.blocks();
    let bs = scale.block_bytes();
    let iters = scale.iterations();
    let mut b = AppBuilder::new("stencil");

    let mut u0 = Vec::with_capacity(nb);
    let mut u1 = Vec::with_capacity(nb);
    for i in 0..nb {
        u0.push(b.object(&format!("u0_{i}"), bs));
        u1.push(b.object(&format!("u1_{i}"), bs));
    }
    let per_iter = lines(bs) as f64 * 3.0;
    for i in 0..nb {
        b.set_est_refs(u0[i], per_iter * iters as f64 / 2.0);
        b.set_est_refs(u1[i], per_iter * iters as f64 / 2.0);
    }

    let sweep = b.class("sweep");
    let ln = lines(bs);
    for w in 0..iters {
        let (src, dst): (&Vec<_>, &Vec<_>) = if w % 2 == 0 { (&u0, &u1) } else { (&u1, &u0) };
        for i in 0..nb {
            let mut t = b
                .task(sweep)
                .read_streaming(src[i], ln)
                .write_streaming(dst[i], ln)
                .compute_us(4.0);
            // Halo reads: one line row from each neighbour (small but they
            // carry the dependences).
            let halo = (ln / 16).max(1);
            if i > 0 {
                t = t.read_streaming(src[i - 1], halo);
            }
            if i + 1 < nb {
                t = t.read_streaming(src[i + 1], halo);
            }
            t.submit();
        }
        if w + 1 < iters {
            b.next_window();
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let app = app(Scale::Test);
        assert_eq!(app.objects.len(), 2 * Scale::Test.blocks());
        assert_eq!(app.windows(), Scale::Test.iterations());
        app.validate().unwrap();
    }

    #[test]
    fn first_window_is_fully_parallel() {
        let app = app(Scale::Test);
        assert_eq!(app.graph.roots().len(), Scale::Test.blocks());
    }

    #[test]
    fn neighbour_dependences_exist_across_windows() {
        let app = app(Scale::Test);
        let nb = Scale::Test.blocks() as u32;
        // Window-1 task for block 1 reads u0_0, u0_1, u0_2 — but writes
        // u0_1, so it WAR-depends on window-0 readers of u0_1: at least
        // its own-block predecessor plus neighbours.
        let t = tahoe_taskrt::TaskId(nb + 1);
        let preds = app.graph.preds(t);
        assert!(preds.len() >= 2, "expected halo deps, got {preds:?}");
    }
}
