//! Read-heavy vs write-heavy object sets (the read/write-asymmetry
//! showcase).
//!
//! Two equal-sized block sets are touched with the same access *count*
//! per window — one set is only read, the other only written. On a
//! read/write-symmetric NVM the sets are interchangeable; on Optane-like
//! NVM (writes ~3× more expensive per byte) the write set is worth far
//! more DRAM. A placement model that does not distinguish loads from
//! stores cannot tell the sets apart — this workload is what the paper's
//! read/write-distinction ablation (E10) measures.

use tahoe_core::{App, AppBuilder};

use crate::spec::{lines, Scale};

/// Build the rwmix workload.
pub fn app(scale: Scale) -> App {
    let nb = scale.blocks();
    let bs = scale.block_bytes();
    let iters = scale.iterations();
    let mut b = AppBuilder::new("rwmix");

    let mut reads = Vec::with_capacity(nb);
    let mut writes = Vec::with_capacity(nb);
    for i in 0..nb {
        reads.push(b.object(&format!("R{i}"), bs));
        writes.push(b.object(&format!("W{i}"), bs));
    }
    let ln = lines(bs);
    for i in 0..nb {
        // Identical compiler reference estimates: only the *runtime*
        // models can tell the sets apart.
        b.set_est_refs(reads[i], (ln * iters as u64) as f64);
        b.set_est_refs(writes[i], (ln * iters as u64) as f64);
    }

    let reader = b.class("reader");
    let writer = b.class("writer");
    for w in 0..iters {
        for i in 0..nb {
            b.task(reader)
                .read_streaming(reads[i], ln)
                .compute_us(2.0)
                .submit();
            b.task(writer)
                .write_streaming(writes[i], ln)
                .compute_us(2.0)
                .submit();
        }
        if w + 1 < iters {
            b.next_window();
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_core::prelude::*;

    #[test]
    fn shape() {
        let app = app(Scale::Test);
        assert_eq!(app.objects.len(), 2 * Scale::Test.blocks());
        assert_eq!(app.graph.class_count(), 2);
        app.validate().unwrap();
    }

    #[test]
    fn write_set_hurts_more_on_asymmetric_nvm() {
        let app = app(Scale::Test);
        // Pin the read set vs the write set on an Optane-like platform
        // sized to hold exactly one set.
        let set_bytes = app.footprint() / 2;
        let reads: Vec<_> = (0..app.objects.len())
            .filter(|&i| app.objects[i].name.starts_with('R'))
            .map(|i| tahoe_hms::ObjectId(i as u32))
            .collect();
        let writes: Vec<_> = (0..app.objects.len())
            .filter(|&i| app.objects[i].name.starts_with('W'))
            .map(|i| tahoe_hms::ObjectId(i as u32))
            .collect();
        let rt = Runtime::new(
            Platform::optane(set_bytes, 4 * app.footprint()),
            RuntimeConfig::default(),
        );
        let pin_r = rt.run(&app, &PolicyKind::Pinned(reads));
        let pin_w = rt.run(&app, &PolicyKind::Pinned(writes));
        assert!(
            pin_w.makespan_ns < pin_r.makespan_ns,
            "sheltering the write set must win on Optane: {} vs {}",
            pin_w.makespan_ns,
            pin_r.makespan_ns
        );
    }
}
