//! Phase-alternating workload: the local-search showcase.
//!
//! Iterations alternate between two phases with disjoint hot sets — a
//! sweep phase streaming array set `A` and a gather phase chasing array
//! set `B` (the BT/SP-style behaviour for which the paper's per-phase
//! local search beats the one-placement global search).

use tahoe_core::{App, AppBuilder};

use crate::spec::{lines, Scale};

/// Build the phased workload.
pub fn app(scale: Scale) -> App {
    let nb = scale.blocks();
    let bs = scale.block_bytes();
    let iters = scale.iterations().max(4);
    let mut b = AppBuilder::new("phased");

    let mut a = Vec::with_capacity(nb);
    let mut bb = Vec::with_capacity(nb);
    for i in 0..nb {
        a.push(b.object(&format!("A{i}"), bs));
        bb.push(b.object(&format!("B{i}"), bs));
    }
    let ln = lines(bs);
    for i in 0..nb {
        b.set_est_refs(a[i], (ln * iters as u64) as f64);
        b.set_est_refs(bb[i], (ln * iters as u64 / 2) as f64);
    }

    let sweep = b.class("sweep");
    let gather = b.class("gather");
    // Phases span several windows so a per-phase placement swap amortizes
    // its migration cost (the regime where local search beats global).
    const PHASE_LEN: u32 = 3;
    for w in 0..iters {
        if (w / PHASE_LEN).is_multiple_of(2) {
            // Sweep phase: stream the A set hard (two passes per window);
            // B untouched.
            for _pass in 0..2 {
                for i in 0..nb {
                    b.task(sweep)
                        .update_streaming(a[i], ln)
                        .compute_us(4.0)
                        .submit();
                }
            }
        } else {
            // Gather phase: pound the B set; A untouched.
            for _pass in 0..2 {
                for i in 0..nb {
                    b.task(gather)
                        .access(
                            bb[i],
                            tahoe_taskrt::AccessMode::ReadWrite,
                            tahoe_hms::AccessProfile::new(ln, ln / 4, 2.0),
                        )
                        .compute_us(2.0)
                        .submit();
                }
            }
        }
        if w + 1 < iters {
            b.next_window();
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_alternate() {
        let app = app(Scale::Test);
        let nb = Scale::Test.blocks();
        assert_eq!(app.objects.len(), 2 * nb);
        // Windows 0..PHASE_LEN touch only A objects; the next phase only B.
        for &t in &app.graph.window_tasks(0) {
            for acc in &app.graph.task(t).accesses {
                assert!(app.objects[acc.object.index()].name.starts_with('A'));
            }
        }
        for &t in &app.graph.window_tasks(3) {
            for acc in &app.graph.task(t).accesses {
                assert!(app.objects[acc.object.index()].name.starts_with('B'));
            }
        }
        app.validate().unwrap();
    }

    #[test]
    fn phases_are_internally_parallel() {
        let app = app(Scale::Test);
        // Sweep tasks of window 0 are mutually independent, and so are
        // the first gather tasks (no cross-object deps).
        assert!(app.graph.roots().len() >= Scale::Test.blocks());
    }
}
