//! Committed buggy workloads for the sanitizer's schedule fuzzer.
//!
//! Each fixture is a small app with a *known, deliberately injected*
//! defect and the exact violation set the sanitizer must report for it
//! — at every worker count, every seed, every schedule. The fuzzer in
//! `tahoe-bench` runs them alongside the correct workloads and gates on
//! exact equality; a sanitizer that over- or under-reports fails CI.
//!
//! Two injection mechanisms keep the fixtures safe to *actually run* on
//! live memory:
//!
//! * **Hidden writes** — an access declared `Read` whose profile stores
//!   lines anyway. The traffic kernel really performs the stores, so
//!   these fixtures cap `max_workers` at 1: the defect is in the
//!   *declaration* (the tracker derived no ordering for the write), not
//!   in what a sequential execution does to the bytes.
//! * **Extra accesses** — `(task, object, writes)` records the workload
//!   claims to perform beyond its declarations. They are fed to the
//!   sanitizer's behavior index but never touch real memory, so they
//!   are safe at any worker count.
//!
//! This module only exists under the `fixtures` feature, and nothing
//! here is reachable from [`crate::all_workloads`].

use tahoe_core::app::{App, AppBuilder};
use tahoe_core::{ExtraAccess, MigrationPlan, PlanContext, PlanStep};
use tahoe_hms::{AccessProfile, TierSpec};
use tahoe_taskrt::AccessMode;

/// One buggy workload plus its expected sanitizer findings.
#[derive(Debug)]
pub struct Fixture {
    /// Stable fixture name (appears in `BENCH_sanitize.json`).
    pub name: &'static str,
    /// The app with the injected defect.
    pub app: App,
    /// Accesses claimed beyond the declarations (never executed).
    pub extra: Vec<ExtraAccess>,
    /// Exact nonzero `(kind tag, count)` pairs the *static* verifier
    /// must report (all other kinds must be zero).
    pub expected_static: Vec<(&'static str, u64)>,
    /// Exact nonzero `(kind tag, count)` pairs the *dynamic* sanitizer
    /// must report (all other kinds must be zero).
    pub expected_dynamic: Vec<(&'static str, u64)>,
    /// Highest worker count the fixture may execute at (1 when the
    /// injected defect performs real stores that must stay sequential).
    pub max_workers: usize,
}

/// A "reader" that sneaks stores into an object it declared `Read`,
/// racing an honest reader of the same object: the dependence tracker
/// saw `Read`/`Read` and derived no edge.
fn hidden_writer() -> Fixture {
    let mut b = AppBuilder::new("fx-hidden-writer");
    let x = b.object("x", 8 << 10);
    let c = b.class("reader");
    b.task(c)
        .access(x, AccessMode::Read, AccessProfile::streaming(64, 8))
        .submit();
    b.task(c)
        .access(x, AccessMode::Read, AccessProfile::streaming(64, 0))
        .submit();
    Fixture {
        name: "hidden_writer",
        app: b.build(),
        extra: vec![],
        expected_static: vec![],
        expected_dynamic: vec![("write_under_read", 1), ("unordered_conflict", 1)],
        max_workers: 1,
    }
}

/// Three "readers" of a shared accumulator all store into it: every
/// pair of hidden writes is an unordered conflict.
fn racy_reduction() -> Fixture {
    let mut b = AppBuilder::new("fx-racy-reduction");
    let acc = b.object("acc", 8 << 10);
    let c = b.class("sum");
    for _ in 0..3 {
        b.task(c)
            .access(acc, AccessMode::Read, AccessProfile::streaming(64, 4))
            .submit();
    }
    Fixture {
        name: "racy_reduction",
        app: b.build(),
        extra: vec![],
        expected_static: vec![],
        expected_dynamic: vec![("write_under_read", 3), ("unordered_conflict", 3)],
        max_workers: 1,
    }
}

/// Two writers on disjoint objects; task 0 also claims to write task
/// 1's object without declaring it — undeclared, and racing t1's
/// declared write. Extra accesses never execute, so any worker count
/// is safe.
fn undeclared_neighbor() -> Fixture {
    let mut b = AppBuilder::new("fx-undeclared-neighbor");
    let x = b.object("x", 8 << 10);
    let y = b.object("y", 8 << 10);
    let c = b.class("w");
    b.task(c).write_streaming(x, 64).submit();
    b.task(c).write_streaming(y, 64).submit();
    Fixture {
        name: "undeclared_neighbor",
        app: b.build(),
        extra: vec![ExtraAccess {
            task: 0,
            object: 1,
            writes: true,
        }],
        expected_static: vec![],
        expected_dynamic: vec![("undeclared_access", 1), ("unordered_conflict", 1)],
        max_workers: 4,
    }
}

/// A stale annotation: one declared access carries no memory traffic,
/// ordering the graph without ever executing. A static-pass defect;
/// the dynamic run is clean (the empty access is harmless to execute).
fn stale_annotation() -> Fixture {
    let mut b = AppBuilder::new("fx-stale-annotation");
    let x = b.object("x", 8 << 10);
    let y = b.object("y", 8 << 10);
    let c = b.class("step");
    b.task(c).write_streaming(x, 64).submit();
    b.task(c)
        .read_streaming(x, 64)
        .access(y, AccessMode::Write, AccessProfile::new(0, 0, 1.0))
        .submit();
    Fixture {
        name: "stale_annotation",
        app: b.build(),
        extra: vec![],
        expected_static: vec![("dead_declaration", 1)],
        expected_dynamic: vec![],
        max_workers: 4,
    }
}

/// Every committed fixture, in a fixed order.
pub fn all_fixtures() -> Vec<Fixture> {
    vec![
        hidden_writer(),
        racy_reduction(),
        undeclared_neighbor(),
        stale_annotation(),
    ]
}

/// One deliberately *unsound migration plan* plus the exact diagnostic
/// set the static plan auditor must report for it. The plans are never
/// executed — they exist to prove the auditor rejects exactly what it
/// should, mirroring the sanitizer-fixture contract above.
#[derive(Debug)]
pub struct PlanFixture {
    /// Stable fixture name (appears in `BENCH_verify.json`).
    pub name: &'static str,
    /// The (correct) app the buggy plan was written against.
    pub app: App,
    /// Ordered tier list the plan is audited under, fastest first.
    pub specs: Vec<TierSpec>,
    /// The plan with the injected defect.
    pub plan: MigrationPlan,
    /// `(object, window)` free points fed to the audit context.
    pub freed_before_window: Vec<(u32, u32)>,
    /// Undeclared accesses fed to the audit context (never executed).
    pub extra: Vec<ExtraAccess>,
    /// Exact nonzero `(kind tag, count)` pairs the auditor must report
    /// (all other kinds must be zero).
    pub expected_audit: Vec<(&'static str, u64)>,
}

impl PlanFixture {
    /// The audit context this fixture is checked under.
    pub fn context(&self) -> PlanContext {
        let mut ctx = PlanContext::new(self.app.objects.iter().map(|o| o.size).collect());
        for &(o, w) in &self.freed_before_window {
            ctx = ctx.free_before_window(o, w);
        }
        ctx.with_extra(self.extra.clone())
    }
}

/// DRAM (capped) over an effectively unbounded NVM spill tier.
fn plan_specs(dram_cap: u64) -> Vec<TierSpec> {
    vec![
        TierSpec::symmetric("DRAM", 80.0, 30.0, dram_cap),
        TierSpec::symmetric("NVM", 300.0, 5.0, 1 << 40),
    ]
}

/// Two windows over two objects, everything declared.
fn plan_app(name: &str, obj_bytes: u64) -> App {
    let mut b = AppBuilder::new(name);
    let x = b.object("x", obj_bytes);
    let y = b.object("y", obj_bytes);
    let c = b.class("step");
    b.task(c)
        .write_streaming(x, 64)
        .write_streaming(y, 64)
        .submit();
    b.next_window();
    b.task(c).read_streaming(x, 64).submit();
    b.task(c).read_streaming(y, 64).submit();
    b.build()
}

/// The plan promotes both objects into a DRAM that only fits one: the
/// second copy overflows the tier mid-schedule.
fn plan_over_capacity_step() -> PlanFixture {
    let to_dram = |o: u32| PlanStep {
        object: o,
        to_tier: 0,
        window: 1,
    };
    PlanFixture {
        name: "plan_over_capacity_step",
        app: plan_app("fx-plan-over-capacity", 60 << 10),
        specs: plan_specs(80 << 10),
        plan: MigrationPlan {
            initial_tiers: vec![1, 1],
            steps: vec![to_dram(0), to_dram(1)],
        },
        freed_before_window: vec![],
        extra: vec![],
        expected_audit: vec![("plan_over_capacity", 1)],
    }
}

/// The plan moves an object at the same window an *undeclared* reader
/// touches it: no pin, no ordering path — the copy races the read
/// under some schedule.
fn plan_move_races_reader() -> PlanFixture {
    PlanFixture {
        name: "plan_move_races_reader",
        app: plan_app("fx-plan-move-race", 8 << 10),
        specs: plan_specs(1 << 20),
        plan: MigrationPlan {
            initial_tiers: vec![1, 1],
            steps: vec![PlanStep {
                object: 0,
                to_tier: 0,
                window: 1,
            }],
        },
        freed_before_window: vec![],
        // t2 (window 1) declares only y but also reads x.
        extra: vec![ExtraAccess {
            task: 2,
            object: 0,
            writes: false,
        }],
        expected_audit: vec![("plan_move_race", 1)],
    }
}

/// The plan targets tier 7 of a two-tier list.
fn plan_move_to_unknown_tier() -> PlanFixture {
    PlanFixture {
        name: "plan_move_to_unknown_tier",
        app: plan_app("fx-plan-unknown-tier", 8 << 10),
        specs: plan_specs(1 << 20),
        plan: MigrationPlan {
            initial_tiers: vec![1, 1],
            steps: vec![PlanStep {
                object: 0,
                to_tier: 7,
                window: 1,
            }],
        },
        freed_before_window: vec![],
        extra: vec![],
        expected_audit: vec![("plan_unknown_tier", 1)],
    }
}

/// The plan moves an object at window 1 that is freed before window 1
/// starts: the copy walks dead memory.
fn plan_move_of_freed_object() -> PlanFixture {
    PlanFixture {
        name: "plan_move_of_freed_object",
        app: plan_app("fx-plan-freed-object", 8 << 10),
        specs: plan_specs(1 << 20),
        plan: MigrationPlan {
            initial_tiers: vec![1, 1],
            steps: vec![PlanStep {
                object: 1,
                to_tier: 0,
                window: 1,
            }],
        },
        freed_before_window: vec![(1, 1)],
        extra: vec![],
        expected_audit: vec![("plan_dead_object", 1)],
    }
}

/// Every committed plan fixture, in a fixed order.
pub fn all_plan_fixtures() -> Vec<PlanFixture> {
    vec![
        plan_over_capacity_step(),
        plan_move_races_reader(),
        plan_move_to_unknown_tier(),
        plan_move_of_freed_object(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_validate_and_have_unique_names() {
        let fixtures = all_fixtures();
        let mut names: Vec<&str> = fixtures.iter().map(|f| f.name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
        for f in all_fixtures() {
            f.app
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", f.name));
            assert!(f.max_workers >= 1);
            assert!(
                !f.expected_static.is_empty() || !f.expected_dynamic.is_empty(),
                "{} injects no defect",
                f.name
            );
        }
    }

    #[test]
    fn real_store_fixtures_stay_sequential() {
        // Any fixture whose declared profiles store under a Read
        // declaration performs those stores for real — it must pin
        // max_workers to 1.
        for f in all_fixtures() {
            let hidden_stores = f.app.graph.tasks().iter().any(|t| {
                t.accesses
                    .iter()
                    .any(|a| a.profile.stores > 0 && !a.mode.writes())
            });
            if hidden_stores {
                assert_eq!(f.max_workers, 1, "{} must stay sequential", f.name);
            }
        }
    }

    #[test]
    fn plan_fixtures_reproduce_their_exact_diagnostic_set() {
        let fixtures = all_plan_fixtures();
        let mut names: Vec<&str> = fixtures.iter().map(|f| f.name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
        for f in fixtures {
            f.app
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", f.name));
            assert!(!f.expected_audit.is_empty(), "{} injects no defect", f.name);
            let report = tahoe_core::audit_plan(&f.app.graph, &f.plan, &f.specs, &f.context());
            let got: Vec<(&'static str, u64)> = report
                .by_kind()
                .into_iter()
                .filter(|&(_, n)| n > 0)
                .collect();
            assert_eq!(got, f.expected_audit, "{} diagnostic set drifted", f.name);
        }
    }

    #[test]
    fn plan_fixture_apps_are_clean_without_the_buggy_plan() {
        // The defect lives in the *plan*, not the app: auditing a
        // no-move plan over the same app and tiers must be clean.
        for f in all_plan_fixtures() {
            let benign = MigrationPlan {
                initial_tiers: f.plan.initial_tiers.clone(),
                steps: vec![],
            };
            let ctx = PlanContext::new(f.app.objects.iter().map(|o| o.size).collect());
            let report = tahoe_core::audit_plan(&f.app.graph, &benign, &f.specs, &ctx);
            assert!(report.is_clean(), "{}: {:?}", f.name, report.violations);
        }
    }

    #[test]
    fn fixture_names_never_collide_with_real_workloads() {
        let real: Vec<String> = crate::all_workloads(crate::Scale::Test)
            .into_iter()
            .map(|a| a.name)
            .collect();
        for f in all_fixtures() {
            assert!(
                !real.contains(&f.app.name),
                "{} shadows a real workload",
                f.name
            );
        }
    }
}
