//! Task mergesort: parallel leaf sorts, then merge levels into a
//! ping-pong buffer.
//!
//! Leaves are compute+stream; merges are pure streams (read two, write
//! one) — bandwidth-sensitive with a shrinking-parallelism DAG.

use tahoe_core::{App, AppBuilder};

use crate::spec::{lines, Scale};

/// Build the mergesort workload.
pub fn app(scale: Scale) -> App {
    let nb = scale.blocks().next_power_of_two();
    let bs = scale.block_bytes();
    let iters = scale.iterations();
    let mut b = AppBuilder::new("sort");

    // Two buffer sets: data and aux, block-granular.
    let mut data = Vec::with_capacity(nb);
    let mut aux = Vec::with_capacity(nb);
    for i in 0..nb {
        data.push(b.object(&format!("d{i}"), bs));
        aux.push(b.object(&format!("s{i}"), bs));
    }
    let levels = nb.trailing_zeros() as usize;
    let ln = lines(bs);
    for i in 0..nb {
        let refs = (ln * (levels as u64 + 1) * iters as u64) as f64;
        b.set_est_refs(data[i], refs);
        b.set_est_refs(aux[i], refs);
    }

    let leaf = b.class("leaf_sort");
    let merge = b.class("merge");

    for w in 0..iters {
        // Leaf sorts, in place on data blocks.
        for i in 0..nb {
            b.task(leaf)
                .update_streaming(data[i], ln)
                .compute_us(30.0)
                .submit();
        }
        // Merge levels ping-pong between data and aux.
        for lvl in 0..levels {
            let width = 1usize << lvl; // blocks per sorted run
            let (src, dst): (&Vec<_>, &Vec<_>) = if lvl % 2 == 0 {
                (&data, &aux)
            } else {
                (&aux, &data)
            };
            let mut base = 0;
            while base < nb {
                // Merge the run [base, base+width) with
                // [base+width, base+2·width): one task per output block.
                for o in 0..(2 * width).min(nb - base) {
                    let t = b
                        .task(merge)
                        .read_streaming(src[base + o], ln)
                        .write_streaming(dst[base + o], ln)
                        .compute_us(6.0);
                    // Each output block also samples the sibling run.
                    let sib = base + (o + width) % (2 * width).min(nb - base);
                    let t = if sib != base + o {
                        t.read_streaming(src[sib], ln / 4)
                    } else {
                        t
                    };
                    t.submit();
                }
                base += 2 * width;
            }
        }
        if w + 1 < iters {
            b.next_window();
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let app = app(Scale::Test);
        let nb = Scale::Test.blocks().next_power_of_two();
        assert_eq!(app.objects.len(), 2 * nb);
        app.validate().unwrap();
    }

    #[test]
    fn leaves_are_parallel() {
        let app = app(Scale::Test);
        let nb = Scale::Test.blocks().next_power_of_two();
        assert_eq!(app.graph.roots().len(), nb);
    }

    #[test]
    fn merges_depend_on_leaves() {
        let app = app(Scale::Test);
        let nb = Scale::Test.blocks().next_power_of_two() as u32;
        // First merge task (id nb) reads data[0] which leaf 0 wrote.
        let preds = app.graph.preds(tahoe_taskrt::TaskId(nb));
        assert!(preds.contains(&tahoe_taskrt::TaskId(0)));
    }
}
