//! Cross-solver property tests: the three knapsack solvers must agree
//! on randomized instances.
//!
//! * At unit grain (capacity ≤ the DP width cap) the scaled DP *is*
//!   exact, so it and branch-and-bound must reach the same optimum.
//! * With a coarse grain the DP rounds sizes up, so its solution stays
//!   feasible for the true instance and its value can only fall short of
//!   branch-and-bound's optimum — never exceed it.
//! * Density greedy (together with the best single item) is the classic
//!   1/2-approximation, and `solve` must dominate every individual
//!   solver.

use proptest::prelude::*;

use tahoe_hms::ObjectId;
use tahoe_placement::{bnb::solve_bnb, knapsack, Item};

/// Positive-value items small enough for branch-and-bound.
fn small_items(n: usize, max_size: u64) -> impl Strategy<Value = Vec<Item>> {
    proptest::collection::vec((1..max_size + 1, 0.1f64..100.0), 1..n + 1).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (size, value))| Item {
                id: ObjectId(i as u32),
                size,
                value,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dp_and_bnb_agree_exactly_at_unit_grain(
        items in small_items(16, 512),
        capacity in 1u64..8193,
    ) {
        // capacity ≤ MAX_DP_WIDTH ⇒ grain == 1 ⇒ the DP is exact.
        let dp = knapsack::solve_exact(&items, capacity);
        let bnb = solve_bnb(&items, capacity).expect("≤ 40 items");
        // Optimal *value* is unique even when the chosen set is not.
        prop_assert!(
            (dp.total_value - bnb.total_value).abs() <= 1e-9 * bnb.total_value.max(1.0),
            "DP {} vs B&B {}", dp.total_value, bnb.total_value
        );
        prop_assert!(dp.total_size <= capacity);
        prop_assert!(bnb.total_size <= capacity);
    }

    #[test]
    fn coarse_grain_dp_is_feasible_and_below_exact(
        items in small_items(14, 1 << 20),
        capacity in 8193u64..(8 << 20),
    ) {
        // capacity > MAX_DP_WIDTH ⇒ grain > 1: the DP solves a
        // pessimistic rounding of the instance.
        let dp = knapsack::solve_exact(&items, capacity);
        let bnb = solve_bnb(&items, capacity).expect("≤ 40 items");
        prop_assert!(dp.total_size <= capacity, "scaled DP must stay feasible");
        prop_assert!(
            dp.total_value <= bnb.total_value + 1e-9 * bnb.total_value.max(1.0),
            "rounded-up sizes cannot beat the true optimum: DP {} vs B&B {}",
            dp.total_value, bnb.total_value
        );
    }

    #[test]
    fn greedy_is_a_half_approximation(
        items in small_items(16, 4096),
        capacity in 1u64..8193,
    ) {
        let greedy = knapsack::solve_greedy(&items, capacity);
        let opt = solve_bnb(&items, capacity).expect("≤ 40 items").total_value;
        let best_single = items
            .iter()
            .filter(|it| it.size <= capacity)
            .map(|it| it.value)
            .fold(0.0f64, f64::max);
        prop_assert!(
            2.0 * greedy.total_value.max(best_single) + 1e-9 >= opt,
            "greedy {} / single {} vs optimum {}",
            greedy.total_value, best_single, opt
        );
        prop_assert!(greedy.total_size <= capacity);
    }

    #[test]
    fn solve_dominates_every_component(
        items in small_items(16, 512),
        capacity in 1u64..8193,
    ) {
        let combined = knapsack::solve(&items, capacity);
        let dp = knapsack::solve_exact(&items, capacity).total_value;
        let greedy = knapsack::solve_greedy(&items, capacity).total_value;
        let bnb = solve_bnb(&items, capacity).expect("≤ 40 items").total_value;
        let floor = dp.max(greedy).max(bnb) - 1e-9;
        prop_assert!(
            combined.total_value >= floor,
            "solve {} below best component {}", combined.total_value, floor
        );
        prop_assert!(combined.total_size <= capacity);
    }
}
