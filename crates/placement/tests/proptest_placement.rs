//! Property tests for the placement engine: solver laws and plan-shape
//! invariants.

use std::collections::BTreeSet;

use proptest::prelude::*;

use tahoe_hms::{presets, ObjectId};
use tahoe_memprof::Calibration;
use tahoe_perfmodel::{Demand, ModelParams};
use tahoe_placement::{global_plan, knapsack, local_plan, Item, WeighCtx};

fn item_strategy(id: u32) -> impl Strategy<Value = Item> {
    (1u64..1_000_000, -1.0e6f64..1.0e6).prop_map(move |(size, value)| Item {
        id: ObjectId(id),
        size,
        value,
    })
}

fn items_strategy(n: usize) -> impl Strategy<Value = Vec<Item>> {
    (0..n as u32)
        .map(item_strategy)
        .collect::<Vec<_>>()
        .prop_map(|v| v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn knapsack_never_overflows_and_never_picks_nonpositive(
        items in items_strategy(24),
        capacity in 1u64..4_000_000,
    ) {
        for sol in [knapsack::solve_exact(&items, capacity),
                    knapsack::solve_greedy(&items, capacity),
                    knapsack::solve(&items, capacity)] {
            prop_assert!(sol.total_size <= capacity);
            let mut value_check = 0.0;
            let mut size_check = 0u64;
            for id in &sol.chosen {
                let it = items.iter().find(|i| i.id == *id).expect("chosen item exists");
                prop_assert!(it.value > 0.0, "chose non-positive item");
                prop_assert!(it.size <= capacity);
                value_check += it.value;
                size_check += it.size;
            }
            prop_assert!((value_check - sol.total_value).abs() < 1e-6);
            prop_assert_eq!(size_check, sol.total_size);
        }
    }

    #[test]
    fn exact_at_least_greedy(
        items in items_strategy(20),
        capacity in 1u64..4_000_000,
    ) {
        // With the capacity-scaling grain the DP is exact up to rounding;
        // solve() takes the max, so it must always dominate greedy.
        let combined = knapsack::solve(&items, capacity);
        let greedy = knapsack::solve_greedy(&items, capacity);
        prop_assert!(combined.total_value >= greedy.total_value - 1e-9);
    }

    #[test]
    fn exact_is_optimal_for_small_sets(
        items in items_strategy(10),
        capacity in 1u64..2_000_000,
    ) {
        // Brute-force reference over all 2^n subsets.
        let n = items.len();
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let mut size = 0u64;
            let mut value = 0.0;
            for (i, it) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    size += it.size;
                    value += it.value;
                }
            }
            if size <= capacity && value > best {
                best = value;
            }
        }
        let sol = knapsack::solve(&items, capacity);
        // The DP scales sizes up to a grain, so it may under-fill
        // slightly; it must reach at least the greedy bound and never
        // exceed true optimum.
        prop_assert!(sol.total_value <= best + 1e-6);
        // For capacities below the scaling threshold the DP is exact.
        if capacity <= 8192 {
            prop_assert!((sol.total_value - best).abs() < 1e-6);
        }
    }
}

fn demand_strategy() -> impl Strategy<Value = Demand> {
    (0.0f64..1e6, 0.0f64..1e6, 1.0f64..1e7, 1.0f64..16.0).prop_map(
        |(loads, stores, active_ns, concurrency)| Demand {
            loads,
            stores,
            active_ns,
            concurrency,
        },
    )
}

fn ctx() -> WeighCtx {
    WeighCtx {
        nvm: presets::optane_pmm(1 << 34),
        dram: presets::dram(1 << 28),
        calib: Calibration::identity(2.3, 9.5),
        params: ModelParams::default(),
        copy_bw_gbps: 5.0,
        overlap_credit_ns: 1000.0,
        dram_pressure: 0.3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn plans_respect_capacity_and_transition_consistency(
        demands in proptest::collection::vec(
            (1u64..500_000, demand_strategy()),
            1..12
        ),
        windows in 1usize..5,
        capacity in 100_000u64..2_000_000,
    ) {
        let wd: Vec<Vec<(ObjectId, u64, Demand)>> = (0..windows)
            .map(|_| {
                demands
                    .iter()
                    .enumerate()
                    .map(|(i, &(size, d))| (ObjectId(i as u32), size, d))
                    .collect()
            })
            .collect();
        let initial = BTreeSet::new();
        for plan in [
            local_plan(&wd, &initial, capacity, &ctx()),
            global_plan(&wd, &initial, capacity, &ctx()),
        ] {
            prop_assert_eq!(plan.windows.len(), windows);
            let mut resident: BTreeSet<ObjectId> = initial.clone();
            for pw in &plan.windows {
                // The planned DRAM set fits.
                let bytes: u64 = pw
                    .dram_set
                    .iter()
                    .map(|o| demands[o.index()].0)
                    .sum();
                prop_assert!(bytes <= capacity, "planned set overflows DRAM");
                // Transitions are consistent with the running set.
                for p in &pw.promote {
                    prop_assert!(!resident.contains(p), "promoting a resident");
                    resident.insert(*p);
                }
                for e in &pw.evict {
                    prop_assert!(resident.contains(e), "evicting a non-resident");
                    resident.remove(e);
                }
                prop_assert!(pw.dram_set.is_subset(&resident));
            }
        }
    }

    #[test]
    fn global_plan_migrates_at_most_once_per_object(
        demands in proptest::collection::vec(
            (1u64..500_000, demand_strategy()),
            1..12
        ),
        windows in 1usize..5,
    ) {
        let wd: Vec<Vec<(ObjectId, u64, Demand)>> = (0..windows)
            .map(|_| {
                demands
                    .iter()
                    .enumerate()
                    .map(|(i, &(size, d))| (ObjectId(i as u32), size, d))
                    .collect()
            })
            .collect();
        let plan = global_plan(&wd, &BTreeSet::new(), 1 << 20, &ctx());
        prop_assert!(plan.migration_count() <= demands.len());
        // All transitions happen at the first window.
        for pw in plan.windows.iter().skip(1) {
            prop_assert!(pw.promote.is_empty() && pw.evict.is_empty());
        }
    }
}
