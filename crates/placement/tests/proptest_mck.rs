//! Cross-solver property tests for the multiple-choice knapsack.
//!
//! * At unit grain (every paid capacity below the cell budget) the
//!   multi-dimensional DP is exact, so it and branch-and-bound must
//!   reach the same optimal value.
//! * The greedy upgrade loop must respect every paid tier's capacity on
//!   arbitrary instances — it is capacity-safe by construction.
//! * At `N = 2` the MCK collapses to the existing binary knapsack:
//!   `solve_mck` must produce the *bit-identical* plan (same chosen
//!   set, value and bytes) as `knapsack::solve`, because it delegates.
//! * Every assignment a solver hands back, lowered to the
//!   promote-from-spill migration plan the runtime executes, must pass
//!   the static plan auditor — the auditor is a postcondition of the
//!   solver contract, not just a bench-time check.

use proptest::prelude::*;

use tahoe_hms::{AccessProfile, ObjectId, TierSpec};
use tahoe_placement::{
    knapsack, solve_mck, solve_mck_bnb, solve_mck_dp, solve_mck_greedy, Item, MckItem,
};
use tahoe_sanitize::plan::{audit_plan, MigrationPlan, PlanContext, PlanStep};
use tahoe_taskrt::{AccessMode, TaskAccess, TaskGraph};

/// Lower a solver assignment over random MCK items to a migration plan
/// (everything starts on the spill tier, promotions at window 0 of a
/// one-task graph touching every item) and run the static plan auditor
/// on it. Panics on any violation: capacity safety under transient
/// double-residency, target validity, no double moves, and cost
/// non-regression must hold for *every* solution a solver returns.
fn assert_plan_audits_clean(items: &[MckItem], tiers: &[u8], caps: &[u64]) {
    // Ordered tier list, fastest first, strictly slower down the list,
    // capacities taken from the solver's own constraint vector.
    let specs: Vec<TierSpec> = caps
        .iter()
        .enumerate()
        .map(|(i, &c)| TierSpec::symmetric("tier", 50.0 * (i + 1) as f64, 40.0 / (i + 1) as f64, c))
        .collect();
    let mut g = TaskGraph::new();
    let c = g.class("touch");
    let accesses: Vec<TaskAccess> = items
        .iter()
        .map(|it| {
            TaskAccess::new(
                it.id,
                AccessMode::ReadWrite,
                AccessProfile::streaming(1 << 12, 1 << 6),
            )
        })
        .collect();
    g.add_task(c, accesses, 1.0);
    let last = (specs.len() - 1) as u8;
    let plan = MigrationPlan {
        initial_tiers: vec![last; items.len()],
        steps: tiers
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != last)
            .map(|(i, &t)| PlanStep {
                object: i as u32,
                to_tier: t,
                window: 0,
            })
            .collect(),
    };
    let ctx = PlanContext::new(items.iter().map(|it| it.size).collect());
    let rep = audit_plan(&g, &plan, &specs, &ctx);
    assert!(
        rep.is_clean(),
        "solver assignment failed the plan audit: {:?}",
        rep.violations
    );
}

/// Random positive-value MCK instances over `tiers` tiers. Values are
/// sorted descending per item (faster tier ⇒ larger saving, with the
/// slowest tier at 0), matching how the runtime builds benefits.
fn mck_items(n: usize, max_size: u64, tiers: usize) -> impl Strategy<Value = Vec<MckItem>> {
    proptest::collection::vec(
        (
            1..max_size + 1,
            proptest::collection::vec(0.0f64..100.0, tiers - 1..tiers),
        ),
        1..n + 1,
    )
    .prop_map(move |raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (size, mut vals))| {
                vals.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
                vals.push(0.0);
                MckItem {
                    id: ObjectId(i as u32),
                    size,
                    values: vals,
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mck_dp_and_bnb_agree_exactly_at_unit_grain(
        items in mck_items(10, 64, 3),
        cap0 in 1u64..200,
        cap1 in 1u64..200,
    ) {
        // Both paid capacities stay far below the DP cell budget, so the
        // per-dimension grain is 1 and the DP is exact.
        let caps = [cap0, cap1, u64::MAX];
        let dp = solve_mck_dp(&items, &caps).unwrap();
        let bnb = solve_mck_bnb(&items, &caps).unwrap().expect("≤ 16 items");
        prop_assert!(
            (dp.total_value - bnb.total_value).abs() <= 1e-9 * bnb.total_value.max(1.0),
            "DP {} vs B&B {}", dp.total_value, bnb.total_value
        );
        prop_assert!(dp.respects(&caps));
        prop_assert!(bnb.respects(&caps));
    }

    #[test]
    fn mck_greedy_respects_every_paid_capacity(
        items in mck_items(24, 1 << 16, 4),
        cap0 in 1u64..(1 << 18),
        cap1 in 1u64..(1 << 18),
        cap2 in 1u64..(1 << 18),
    ) {
        let caps = [cap0, cap1, cap2, u64::MAX];
        let sol = solve_mck_greedy(&items, &caps).unwrap();
        prop_assert!(sol.respects(&caps), "per-tier bytes {:?} caps {:?}", sol.per_tier_bytes, caps);
        // The assignment is complete: every item sits on exactly one tier.
        prop_assert_eq!(sol.tiers.len(), items.len());
        prop_assert_eq!(
            sol.per_tier_bytes.iter().sum::<u64>(),
            items.iter().map(|it| it.size).sum::<u64>()
        );
        assert_plan_audits_clean(&items, &sol.tiers, &caps);
    }

    #[test]
    fn mck_at_two_tiers_is_bit_identical_to_the_binary_solver(
        items in mck_items(16, 512, 2),
        capacity in 1u64..8193,
    ) {
        let bin: Vec<Item> = items
            .iter()
            .map(|it| Item {
                id: it.id,
                size: it.size,
                value: it.values[0] - it.values[1],
            })
            .collect();
        let expect = knapsack::solve(&bin, capacity);
        let got = solve_mck(&items, &[capacity, u64::MAX]).unwrap();
        // Same chosen set (bitwise), same value, same bytes on tier 0.
        prop_assert_eq!(got.objects_on(&items, 0), expect.chosen);
        prop_assert_eq!(got.total_value.to_bits(), expect.total_value.to_bits());
        prop_assert_eq!(got.per_tier_bytes[0], expect.total_size);
    }

    #[test]
    fn mck_solve_dominates_every_component(
        items in mck_items(10, 64, 3),
        cap0 in 1u64..200,
        cap1 in 1u64..200,
    ) {
        let caps = [cap0, cap1, u64::MAX];
        let combined = solve_mck(&items, &caps).unwrap();
        let greedy = solve_mck_greedy(&items, &caps).unwrap().total_value;
        let dp = solve_mck_dp(&items, &caps).unwrap().total_value;
        let bnb = solve_mck_bnb(&items, &caps).unwrap().expect("≤ 16 items").total_value;
        let floor = greedy.max(dp).max(bnb) - 1e-9;
        prop_assert!(
            combined.total_value >= floor,
            "solve_mck {} below best component {}", combined.total_value, floor
        );
        prop_assert!(combined.respects(&caps));
        assert_plan_audits_clean(&items, &combined.tiers, &caps);
    }
}
