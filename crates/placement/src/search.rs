//! Local (per-window) and global (cross-window) placement search.
//!
//! The paper computes both: the local search picks the best DRAM set for
//! every window separately (adapting to phase behaviour at the price of
//! more migrations), the global search treats the whole run as one
//! horizon (at most one migration per object, but a compromise
//! placement). The runtime compares the predicted net gains and enforces
//! the winner.

use std::collections::BTreeSet;

use tahoe_hms::ObjectId;
use tahoe_perfmodel::Demand;

use crate::knapsack::solve;
use crate::plan::{Plan, PlanKind, WindowPlan};
use crate::weight::{ObjectCandidate, WeighCtx};

/// Demand of every object in one window: `(id, size, demand)`.
pub type WindowDemand = Vec<(ObjectId, u64, Demand)>;

/// Per-window local search. `initial_dram` is the DRAM set in force when
/// the plan starts executing. The weigh context's residency and pressure
/// fields are updated as the search walks the windows.
pub fn local_plan(
    windows: &[WindowDemand],
    initial_dram: &BTreeSet<ObjectId>,
    dram_capacity: u64,
    ctx: &WeighCtx,
) -> Plan {
    let mut current: BTreeSet<ObjectId> = initial_dram.clone();
    let mut plans = Vec::with_capacity(windows.len());
    let mut total_gain = 0.0;
    for (w, demands) in windows.iter().enumerate() {
        let occupied: u64 = demands
            .iter()
            .filter(|(id, _, _)| current.contains(id))
            .map(|(_, size, _)| *size)
            .sum();
        let mut ctx_w = ctx.clone();
        ctx_w.dram_pressure = if dram_capacity == 0 {
            1.0
        } else {
            (occupied as f64 / dram_capacity as f64).min(1.0)
        };
        let cands: Vec<ObjectCandidate> = demands
            .iter()
            .map(|&(id, size, demand)| ObjectCandidate {
                id,
                size,
                demand,
                resident: current.contains(&id),
            })
            .collect();
        let items = ctx_w.weigh_all(&cands);
        let sol = solve(&items, dram_capacity);
        let target: BTreeSet<ObjectId> = sol.chosen.iter().copied().collect();
        let promote: Vec<ObjectId> = target.difference(&current).copied().collect();
        // Objects only leave DRAM to make room; objects outside this
        // window's demand keep their residency.
        let evict: Vec<ObjectId> = current
            .iter()
            .filter(|id| demands.iter().any(|(d, _, _)| d == *id) && !target.contains(*id))
            .copied()
            .collect();
        for id in &evict {
            current.remove(id);
        }
        for id in &promote {
            current.insert(*id);
        }
        total_gain += sol.total_value;
        plans.push(WindowPlan {
            window: w as u32,
            dram_set: target,
            promote,
            evict,
            predicted_gain_ns: sol.total_value,
        });
    }
    Plan {
        kind: PlanKind::Local,
        windows: plans,
        predicted_gain_ns: total_gain,
    }
}

/// Cross-window global search: sum each object's demand over all windows
/// and solve one knapsack; the chosen set is enforced at the start and
/// never changes.
pub fn global_plan(
    windows: &[WindowDemand],
    initial_dram: &BTreeSet<ObjectId>,
    dram_capacity: u64,
    ctx: &WeighCtx,
) -> Plan {
    use std::collections::BTreeMap;
    if windows.is_empty() {
        return Plan {
            kind: PlanKind::Global,
            windows: Vec::new(),
            predicted_gain_ns: 0.0,
        };
    }
    let mut agg: BTreeMap<ObjectId, (u64, Demand)> = BTreeMap::new();
    for demands in windows {
        for &(id, size, demand) in demands {
            let e = agg.entry(id).or_insert((size, Demand::ZERO));
            e.0 = e.0.max(size);
            e.1 = e.1.add(&demand);
        }
    }
    let cands: Vec<ObjectCandidate> = agg
        .iter()
        .map(|(&id, &(size, demand))| ObjectCandidate {
            id,
            size,
            demand,
            resident: initial_dram.contains(&id),
        })
        .collect();
    let items = ctx.weigh_all(&cands);
    let sol = solve(&items, dram_capacity);
    let target: BTreeSet<ObjectId> = sol.chosen.iter().copied().collect();
    let promote: Vec<ObjectId> = target.difference(initial_dram).copied().collect();
    let evict: Vec<ObjectId> = initial_dram
        .iter()
        .filter(|id| agg.contains_key(id) && !target.contains(*id))
        .copied()
        .collect();
    let first = WindowPlan {
        window: 0,
        dram_set: target.clone(),
        promote,
        evict,
        predicted_gain_ns: sol.total_value,
    };
    // Later windows keep the same set, no transitions.
    let mut plan_windows = vec![first];
    for w in 1..windows.len() {
        plan_windows.push(WindowPlan {
            window: w as u32,
            dram_set: target.clone(),
            promote: Vec::new(),
            evict: Vec::new(),
            predicted_gain_ns: 0.0,
        });
    }
    Plan {
        kind: PlanKind::Global,
        windows: plan_windows,
        predicted_gain_ns: sol.total_value,
    }
}

/// Compute both plans and keep the one with the larger predicted gain
/// (ties go to global, which migrates less).
pub fn choose_plan(
    windows: &[WindowDemand],
    initial_dram: &BTreeSet<ObjectId>,
    dram_capacity: u64,
    ctx: &WeighCtx,
) -> Plan {
    let local = local_plan(windows, initial_dram, dram_capacity, ctx);
    let global = global_plan(windows, initial_dram, dram_capacity, ctx);
    // Near-ties go to global (fewer migrations); the epsilon absorbs
    // floating-point association differences between the two sums.
    let eps = 1e-9 * global.predicted_gain_ns.abs().max(1.0);
    if local.predicted_gain_ns > global.predicted_gain_ns + eps {
        local
    } else {
        global
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::presets;
    use tahoe_memprof::Calibration;
    use tahoe_perfmodel::ModelParams;

    fn ctx() -> WeighCtx {
        WeighCtx {
            nvm: presets::optane_pmm(1 << 34),
            dram: presets::dram(1 << 28),
            calib: Calibration::identity(3.0, 9.5),
            params: ModelParams::default(),
            copy_bw_gbps: 5.0,
            overlap_credit_ns: 0.0,
            dram_pressure: 0.0,
        }
    }

    /// Bandwidth-saturating demand worth migrating for.
    fn hot() -> Demand {
        Demand {
            loads: 1.0e8,
            stores: 5.0e7,
            active_ns: 1.5e8 * 64.0 / 3.0,
            concurrency: 16.0,
        }
    }

    fn cold() -> Demand {
        Demand {
            loads: 1000.0,
            stores: 0.0,
            active_ns: 1.0e6,
            ..Demand::ZERO
        }
    }

    const MB: u64 = 1 << 20;

    #[test]
    fn global_plan_picks_hottest_objects_once() {
        // Two objects hot in every window, one cold; DRAM fits two.
        let o = |i| ObjectId(i);
        let w: WindowDemand = vec![(o(0), MB, hot()), (o(1), MB, hot()), (o(2), MB, cold())];
        let windows = vec![w.clone(), w.clone(), w];
        let plan = global_plan(&windows, &BTreeSet::new(), 2 * MB, &ctx());
        assert_eq!(plan.kind, PlanKind::Global);
        let set = plan.dram_set_for(0).unwrap();
        assert!(set.contains(&o(0)) && set.contains(&o(1)));
        assert!(!set.contains(&o(2)));
        // Only the first window migrates.
        assert_eq!(plan.migration_count(), 2);
        assert_eq!(plan.windows.len(), 3);
    }

    #[test]
    fn local_plan_adapts_to_phase_change() {
        // Window 0 is hot on object 0; window 1 is hot on object 1. DRAM
        // fits only one object.
        let o = |i| ObjectId(i);
        let w0: WindowDemand = vec![(o(0), MB, hot()), (o(1), MB, cold())];
        let w1: WindowDemand = vec![(o(0), MB, cold()), (o(1), MB, hot())];
        let plan = local_plan(&[w0, w1], &BTreeSet::new(), MB, &ctx());
        assert!(plan.windows[0].dram_set.contains(&o(0)));
        assert!(plan.windows[1].dram_set.contains(&o(1)));
        // Window 1 must evict 0 and promote 1.
        assert_eq!(plan.windows[1].promote, vec![o(1)]);
        assert_eq!(plan.windows[1].evict, vec![o(0)]);
    }

    #[test]
    fn stable_workload_prefers_global() {
        let o = |i| ObjectId(i);
        let w: WindowDemand = vec![(o(0), MB, hot()), (o(1), MB, hot())];
        let windows = vec![w.clone(), w.clone(), w.clone(), w];
        let plan = choose_plan(&windows, &BTreeSet::new(), 2 * MB, &ctx());
        // Same set every window → global's single migration wins (gain is
        // equal or better because residents weigh more than movers).
        assert_eq!(plan.kind, PlanKind::Global);
    }

    #[test]
    fn phased_workload_prefers_local() {
        let o = |i| ObjectId(i);
        // Strongly alternating phases, small DRAM.
        let w0: WindowDemand = vec![(o(0), MB, hot()), (o(1), MB, cold())];
        let w1: WindowDemand = vec![(o(0), MB, cold()), (o(1), MB, hot())];
        let windows = vec![w0.clone(), w1.clone(), w0.clone(), w1, w0];
        let plan = choose_plan(&windows, &BTreeSet::new(), MB, &ctx());
        assert_eq!(plan.kind, PlanKind::Local);
    }

    #[test]
    fn initial_residency_counts() {
        let o = |i| ObjectId(i);
        let w: WindowDemand = vec![(o(0), MB, hot())];
        let initial: BTreeSet<ObjectId> = [o(0)].into_iter().collect();
        let plan = global_plan(&[w], &initial, 2 * MB, &ctx());
        // Already resident: chosen, but no migration needed.
        assert!(plan.dram_set_for(0).unwrap().contains(&o(0)));
        assert_eq!(plan.migration_count(), 0);
    }

    #[test]
    fn empty_windows_give_empty_plan() {
        let plan = choose_plan(&[], &BTreeSet::new(), MB, &ctx());
        assert_eq!(plan.windows.len(), 0);
        assert_eq!(plan.predicted_gain_ns, 0.0);
    }
}
