//! Assembling knapsack items from model outputs.
//!
//! The paper's per-object weight is `w = BFT − COST − extra_COST`:
//! predicted DRAM benefit, minus the (overlap-credited) cost of promoting
//! the object if it is not already resident, minus the cost of evicting
//! victims when DRAM is under pressure. Eviction victims are only known
//! after the knapsack has chosen a set, so — like the paper, which prices
//! eviction per-phase against the previously decided placement — we
//! charge each non-resident candidate an eviction term proportional to
//! how full DRAM currently is.

use tahoe_hms::{Ns, ObjectId, TierSpec};
use tahoe_memprof::Calibration;
use tahoe_perfmodel::{cost, dram_benefit_ns, Demand, ModelParams};

use crate::knapsack::Item;

/// A candidate object for one planning horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectCandidate {
    /// Object id.
    pub id: ObjectId,
    /// Size in bytes.
    pub size: u64,
    /// Estimated traffic over the horizon.
    pub demand: Demand,
    /// Whether the object is DRAM-resident at the horizon's start.
    pub resident: bool,
}

/// Everything needed to price candidates.
#[derive(Debug, Clone)]
pub struct WeighCtx {
    /// NVM tier spec.
    pub nvm: TierSpec,
    /// DRAM tier spec.
    pub dram: TierSpec,
    /// Platform calibration.
    pub calib: Calibration,
    /// Model parameters.
    pub params: ModelParams,
    /// Copy-channel bandwidth, GB/s.
    pub copy_bw_gbps: f64,
    /// Expected overlap credit per migration, ns (how much copy time the
    /// helper thread typically hides; the planner learns it from the
    /// previous window's measured overlap).
    pub overlap_credit_ns: Ns,
    /// Current DRAM occupancy fraction in `[0, 1]` (drives the eviction
    /// term for non-resident candidates).
    pub dram_pressure: f64,
}

impl WeighCtx {
    /// Price one candidate into a knapsack item.
    pub fn weigh(&self, c: &ObjectCandidate) -> Item {
        let benefit = dram_benefit_ns(&c.demand, &self.nvm, &self.dram, &self.calib, &self.params);
        let move_cost = if c.resident {
            0.0
        } else {
            let promote =
                cost::migration_cost_ns(c.size, self.copy_bw_gbps, self.overlap_credit_ns);
            // Eviction pressure: when DRAM is nearly full, promoting this
            // object forces roughly `size` victim bytes out too.
            let evict = self.dram_pressure.clamp(0.0, 1.0) * c.size as f64 / self.copy_bw_gbps;
            promote + evict
        };
        Item {
            id: c.id,
            size: c.size,
            value: benefit - move_cost,
        }
    }

    /// Price a whole slate of candidates.
    pub fn weigh_all(&self, cands: &[ObjectCandidate]) -> Vec<Item> {
        cands.iter().map(|c| self.weigh(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tahoe_hms::presets;

    fn ctx(pressure: f64) -> WeighCtx {
        WeighCtx {
            nvm: presets::optane_pmm(1 << 34),
            dram: presets::dram(1 << 28),
            calib: Calibration::identity(3.0, 9.5),
            params: ModelParams::default(),
            copy_bw_gbps: 5.0,
            overlap_credit_ns: 0.0,
            dram_pressure: pressure,
        }
    }

    fn hot_candidate(id: u32, resident: bool) -> ObjectCandidate {
        ObjectCandidate {
            id: ObjectId(id),
            size: 1 << 20,
            demand: Demand {
                loads: 1.0e7,
                stores: 5.0e6,
                active_ns: 1.5e7 * 64.0 / 3.0, // at NVM peak → BW-sensitive
                concurrency: 16.0,
            },
            resident,
        }
    }

    fn cold_candidate(id: u32) -> ObjectCandidate {
        ObjectCandidate {
            id: ObjectId(id),
            size: 1 << 26,
            demand: Demand {
                loads: 10.0,
                stores: 0.0,
                active_ns: 1.0e6,
                ..Demand::ZERO
            },
            resident: false,
        }
    }

    #[test]
    fn hot_objects_get_positive_weight() {
        let it = ctx(0.0).weigh(&hot_candidate(0, false));
        assert!(it.value > 0.0);
    }

    #[test]
    fn cold_objects_do_not_justify_migration() {
        let it = ctx(0.0).weigh(&cold_candidate(0));
        assert!(it.value < 0.0, "value = {}", it.value);
    }

    #[test]
    fn resident_objects_weigh_more_than_identical_nonresident() {
        let c = ctx(0.0);
        let stay = c.weigh(&hot_candidate(0, true));
        let come = c.weigh(&hot_candidate(0, false));
        assert!(stay.value > come.value);
    }

    #[test]
    fn pressure_penalizes_incoming_objects() {
        let relaxed = ctx(0.0).weigh(&hot_candidate(0, false));
        let squeezed = ctx(1.0).weigh(&hot_candidate(0, false));
        assert!(squeezed.value < relaxed.value);
        // But pressure never affects residents.
        let r0 = ctx(0.0).weigh(&hot_candidate(0, true));
        let r1 = ctx(1.0).weigh(&hot_candidate(0, true));
        assert_eq!(r0.value, r1.value);
    }

    #[test]
    fn overlap_credit_reduces_cost() {
        let mut c = ctx(0.0);
        let before = c.weigh(&hot_candidate(0, false));
        c.overlap_credit_ns = 1.0e12; // everything hidden
        let after = c.weigh(&hot_candidate(0, false));
        assert!(after.value > before.value);
        // Fully credited promotion equals the resident weight.
        let resident = c.weigh(&hot_candidate(0, true));
        assert!((after.value - resident.value).abs() < 1e-9);
    }
}
