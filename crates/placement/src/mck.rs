//! Multiple-choice knapsack (MCK): N-tier generalization of the 0/1
//! placement knapsack.
//!
//! With two tiers, placement is a 0/1 choice — in DRAM or not — and the
//! binary solvers in [`crate::knapsack`] / [`crate::bnb`] apply. With an
//! ordered tier list (DRAM, CXL, …, NVM) every object must pick *exactly
//! one* tier: that is the multiple-choice knapsack. Each [`MckItem`]
//! carries one value per tier (`values[t]` = modelled nanoseconds saved
//! by placing the object on tier `t` instead of the slowest tier, so the
//! last entry is conventionally `0`), and the solver maximizes total
//! value subject to each *paid* tier's byte capacity. The last tier is
//! the spill tier and is never capacity-constrained — exactly like the
//! binary formulation, where NVM absorbs whatever DRAM rejects.
//!
//! Three solvers are provided and cross-checked by property tests:
//!
//! * [`solve_mck_dp`] — dynamic programming over the paid tiers'
//!   capacities, with per-dimension capacity scaling so the table stays
//!   bounded (exact at unit grain, conservative above it);
//! * [`solve_mck_bnb`] — exact depth-first branch-and-bound on the
//!   unscaled instance, for small item counts;
//! * [`solve_mck_greedy`] — density-ordered upgrade loop that respects
//!   every paid tier's capacity by construction.
//!
//! [`solve_mck`] runs all of them and keeps the best plan. At `N = 2` it
//! instead *delegates* to the binary [`crate::knapsack::solve`], so
//! two-tier plans are bit-identical to what the existing solver produces
//! — the N-tier path is a strict generalization, not a reimplementation.
//!
//! # Example: a 3-tier toy instance
//!
//! DRAM holds 64 bytes, CXL 128, NVM spills. The streaming object wants
//! DRAM badly (CXL barely helps a bandwidth-bound access pattern), the
//! latency-bound object is nearly as happy on CXL as on DRAM, and the
//! cold object matters little anywhere:
//!
//! ```
//! use tahoe_hms::ObjectId;
//! use tahoe_placement::{solve_mck, MckItem};
//!
//! let items = vec![
//!     // values[t] = ns saved on tier t vs the slowest tier.
//!     MckItem { id: ObjectId(0), size: 64, values: vec![90.0, 40.0, 0.0] },
//!     MckItem { id: ObjectId(1), size: 64, values: vec![80.0, 70.0, 0.0] },
//!     MckItem { id: ObjectId(2), size: 128, values: vec![30.0, 5.0, 0.0] },
//! ];
//! let plan = solve_mck(&items, &[64, 128, u64::MAX]).unwrap();
//! // The streaming object takes DRAM, the latency-bound one settles for
//! // CXL (70 of its 80), and the cold one spills to NVM.
//! assert_eq!(plan.tiers, vec![0, 1, 2]);
//! assert!((plan.total_value - 160.0).abs() < 1e-9);
//! ```

use tahoe_hms::ObjectId;

use crate::knapsack::{self, Item};

/// One placement candidate: an object with one value per tier.
#[derive(Debug, Clone, PartialEq)]
pub struct MckItem {
    /// The object this item places.
    pub id: ObjectId,
    /// Object size in bytes.
    pub size: u64,
    /// `values[t]` = benefit of placing the object on tier `t`
    /// (modelled ns saved vs the slowest tier; the last entry is
    /// conventionally `0`). Length must equal the tier count.
    pub values: Vec<f64>,
}

/// A complete N-tier placement: one tier per item.
#[derive(Debug, Clone, PartialEq)]
pub struct MckAssignment {
    /// `tiers[i]` = tier index assigned to `items[i]`.
    pub tiers: Vec<u8>,
    /// Sum of each item's value on its assigned tier.
    pub total_value: f64,
    /// Bytes assigned to each tier.
    pub per_tier_bytes: Vec<u64>,
}

impl MckAssignment {
    fn from_tiers(items: &[MckItem], n: usize, tiers: Vec<u8>) -> Self {
        let mut per_tier_bytes = vec![0u64; n];
        let mut total_value = 0.0;
        for (item, &t) in items.iter().zip(&tiers) {
            per_tier_bytes[t as usize] += item.size;
            total_value += item.values[t as usize];
        }
        MckAssignment {
            tiers,
            total_value,
            per_tier_bytes,
        }
    }

    /// Ids assigned to tier `t`, ascending.
    pub fn objects_on(&self, items: &[MckItem], t: u8) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = items
            .iter()
            .zip(&self.tiers)
            .filter(|(_, &at)| at == t)
            .map(|(item, _)| item.id)
            .collect();
        v.sort();
        v
    }

    /// Whether every *paid* tier (all but the last) fits its capacity.
    pub fn respects(&self, caps: &[u64]) -> bool {
        self.per_tier_bytes
            .iter()
            .zip(caps)
            .take(self.per_tier_bytes.len().saturating_sub(1))
            .all(|(used, cap)| used <= cap)
    }
}

/// Cap on the DP table size (total cells across all paid dimensions).
/// With two paid tiers (a 3-tier system) this is a ~255×255 grid.
pub const MCK_MAX_DP_CELLS: usize = 1 << 16;

/// Item-count limit for the exact branch-and-bound: above this the
/// search space (tiers^items) is too large and [`solve_mck_bnb`]
/// returns `None`.
pub const MCK_BNB_ITEM_LIMIT: usize = 16;

fn validate(items: &[MckItem], caps: &[u64]) -> Result<usize, String> {
    let n = caps.len();
    if n < 2 {
        return Err(format!("MCK needs at least 2 tiers, got {n}"));
    }
    for item in items {
        if item.values.len() != n {
            return Err(format!(
                "item {:?} has {} values for {n} tiers",
                item.id,
                item.values.len()
            ));
        }
        if item.size == 0 {
            return Err(format!("item {:?} has zero size", item.id));
        }
        if item.values.iter().any(|v| !v.is_finite()) {
            return Err(format!("item {:?} has a non-finite value", item.id));
        }
    }
    Ok(n)
}

/// Solve the N-tier placement, keeping the best plan across solvers.
///
/// At `caps.len() == 2` this delegates to the binary
/// [`crate::knapsack::solve`] on `values[0] − values[1]`, producing
/// plans bit-identical to the existing two-tier solver. Above that it
/// runs [`solve_mck_greedy`], [`solve_mck_dp`], [`solve_mck_bnb`] (when
/// small enough), *and* the binary restriction to `{tier 0, spill}` —
/// so an N-tier plan never scores below the best two-tier plan of the
/// same instance.
///
/// The last capacity entry is the spill tier and is not enforced.
pub fn solve_mck(items: &[MckItem], caps: &[u64]) -> Result<MckAssignment, String> {
    let n = validate(items, caps)?;
    if n == 2 {
        return Ok(binary_restriction(items, caps, n));
    }
    let mut best = solve_mck_greedy(items, caps)?;
    let dp = solve_mck_dp(items, caps)?;
    if dp.total_value > best.total_value {
        best = dp;
    }
    if let Some(bnb) = solve_mck_bnb(items, caps)? {
        if bnb.total_value > best.total_value {
            best = bnb;
        }
    }
    let binary = binary_restriction(items, caps, n);
    if binary.total_value > best.total_value {
        best = binary;
    }
    debug_assert!(best.respects(caps));
    Ok(best)
}

/// The binary sub-problem: tier 0 vs the spill tier, middle tiers
/// ignored. This *is* the existing two-tier plan when `n == 2`, and a
/// lower bound for the N-tier optimum otherwise.
fn binary_restriction(items: &[MckItem], caps: &[u64], n: usize) -> MckAssignment {
    let last = (n - 1) as u8;
    let bin_items: Vec<Item> = items
        .iter()
        .map(|it| Item {
            id: it.id,
            size: it.size,
            value: it.values[0] - it.values[n - 1],
        })
        .collect();
    let sol = knapsack::solve(&bin_items, caps[0]);
    let tiers = items
        .iter()
        .map(|it| {
            if sol.chosen.binary_search(&it.id).is_ok() {
                0
            } else {
                last
            }
        })
        .collect();
    let mut out = MckAssignment::from_tiers(items, n, tiers);
    // Carry the binary solver's own float accumulation through, so the
    // N = 2 delegation is bit-identical to the two-tier plan (re-summing
    // per item could differ in the last ulp). Mathematically:
    // Σ_chosen v0 + Σ_unchosen v_last = Σ_chosen (v0 − v_last) + Σ v_last.
    let spill_total: f64 = items.iter().map(|it| it.values[n - 1]).sum();
    out.total_value = sol.total_value + spill_total;
    out
}

/// Density-greedy upgrade loop.
///
/// Every item starts on the spill tier; the best feasible upgrade by
/// value-gain density (gain per byte) is applied repeatedly until no
/// upgrade fits or pays. Items may climb through several tiers as
/// capacity allows. Paid-tier capacities are respected by construction:
/// a move is only considered when the destination tier has room.
pub fn solve_mck_greedy(items: &[MckItem], caps: &[u64]) -> Result<MckAssignment, String> {
    let n = validate(items, caps)?;
    let last = (n - 1) as u8;
    let mut tiers = vec![last; items.len()];
    let mut used = vec![0u64; n];
    used[n - 1] = items.iter().map(|it| it.size).sum();
    // Each applied move strictly increases total value, so the loop
    // terminates; the cap is a safety net against float-edge churn.
    let max_moves = items.len() * n * 4;
    for _ in 0..max_moves {
        let mut best: Option<(f64, usize, u8, f64)> = None; // (density, item, tier, gain)
        for (i, item) in items.iter().enumerate() {
            let cur = tiers[i] as usize;
            for t in 0..n - 1 {
                if t == cur {
                    continue;
                }
                if used[t] + item.size > caps[t] {
                    continue;
                }
                let gain = item.values[t] - item.values[cur];
                if gain <= 0.0 {
                    continue;
                }
                let density = gain / item.size as f64;
                let better = match &best {
                    None => true,
                    Some((bd, bi, bt, _)) => {
                        density > *bd
                            || (density == *bd && (i < *bi || (i == *bi && (t as u8) < *bt)))
                    }
                };
                if better {
                    best = Some((density, i, t as u8, gain));
                }
            }
        }
        match best {
            Some((_, i, t, _)) => {
                let size = items[i].size;
                used[tiers[i] as usize] -= size;
                used[t as usize] += size;
                tiers[i] = t;
            }
            None => break,
        }
    }
    let out = MckAssignment::from_tiers(items, n, tiers);
    debug_assert!(out.respects(caps));
    Ok(out)
}

/// Dynamic programming over the paid tiers' capacities.
///
/// Each paid tier is one DP dimension. Capacities are scaled per
/// dimension so the total cell count stays under [`MCK_MAX_DP_CELLS`]:
/// item sizes round *up* to grain units and capacities round *down*, so
/// any DP-feasible plan is feasible for the true instance (the same
/// conservative scaling as the binary [`crate::knapsack::solve_exact`]).
/// At unit grain the DP is exact.
pub fn solve_mck_dp(items: &[MckItem], caps: &[u64]) -> Result<MckAssignment, String> {
    let n = validate(items, caps)?;
    let paid = n - 1;
    let last = (n - 1) as u8;

    // Per-dimension grain: double the widest dimension until the table
    // fits.
    let mut grains = vec![1u64; paid];
    let widths = |grains: &[u64]| -> Vec<u64> { (0..paid).map(|d| caps[d] / grains[d]).collect() };
    let cells = |w: &[u64]| -> u128 { w.iter().map(|&x| x as u128 + 1).product() };
    let mut w = widths(&grains);
    while cells(&w) > MCK_MAX_DP_CELLS as u128 {
        let widest = (0..paid).max_by_key(|&d| w[d]).expect("paid >= 1");
        grains[widest] *= 2;
        w = widths(&grains);
    }
    let widths: Vec<usize> = w.iter().map(|&x| x as usize).collect();
    let cells = widths.iter().map(|&x| x + 1).product::<usize>();
    // Mixed-radix strides: state = Σ_d digit[d] · stride[d].
    let mut strides = vec![0usize; paid];
    let mut acc = 1usize;
    for d in 0..paid {
        strides[d] = acc;
        acc *= widths[d] + 1;
    }

    // Rounded-up per-dimension unit needs for every item.
    let needs: Vec<Vec<u64>> = items
        .iter()
        .map(|it| (0..paid).map(|d| it.size.div_ceil(grains[d])).collect())
        .collect();

    let mut dp = vec![0.0f64; cells];
    let mut choice = vec![0u8; cells * items.len()];
    let mut next = vec![0.0f64; cells];
    for (k, item) in items.iter().enumerate() {
        let row = &mut choice[k * cells..(k + 1) * cells];
        for s in 0..cells {
            // Default: spill tier, free in every paid dimension.
            let mut best = dp[s] + item.values[n - 1];
            let mut pick = last;
            for d in 0..paid {
                let digit = (s / strides[d]) % (widths[d] + 1);
                let need = needs[k][d];
                if (digit as u64) < need {
                    continue;
                }
                let cand = dp[s - (need as usize) * strides[d]] + item.values[d];
                if cand > best {
                    best = cand;
                    pick = d as u8;
                }
            }
            next[s] = best;
            row[s] = pick;
        }
        std::mem::swap(&mut dp, &mut next);
    }

    // Reconstruct from the full-capacity state.
    let mut tiers = vec![last; items.len()];
    let mut s = cells - 1;
    for k in (0..items.len()).rev() {
        let pick = choice[k * cells + s];
        tiers[k] = pick;
        if (pick as usize) < paid {
            let d = pick as usize;
            s -= (needs[k][d] as usize) * strides[d];
        }
    }
    let out = MckAssignment::from_tiers(items, n, tiers);
    debug_assert!(out.respects(caps));
    Ok(out)
}

/// Exact depth-first branch-and-bound on the unscaled instance.
///
/// Items are explored in input order; per item the tiers are tried
/// best-value first. The admissible bound is the current value plus
/// every remaining item's best value (capacities ignored), so pruning
/// is sound. Returns `Ok(None)` above [`MCK_BNB_ITEM_LIMIT`] items.
pub fn solve_mck_bnb(items: &[MckItem], caps: &[u64]) -> Result<Option<MckAssignment>, String> {
    let n = validate(items, caps)?;
    if items.len() > MCK_BNB_ITEM_LIMIT {
        return Ok(None);
    }
    let last = (n - 1) as u8;
    // Suffix sums of per-item best values: the optimistic completion.
    let best_per_item: Vec<f64> = items
        .iter()
        .map(|it| it.values.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
        .collect();
    let mut optimistic = vec![0.0; items.len() + 1];
    for k in (0..items.len()).rev() {
        optimistic[k] = optimistic[k + 1] + best_per_item[k];
    }
    // Per-item tier order, best value first (deterministic tiebreak on
    // the tier index).
    let tier_orders: Vec<Vec<u8>> = items
        .iter()
        .map(|it| {
            let mut order: Vec<u8> = (0..n as u8).collect();
            order.sort_by(|&a, &b| {
                it.values[b as usize]
                    .partial_cmp(&it.values[a as usize])
                    .expect("finite values")
                    .then(a.cmp(&b))
            });
            order
        })
        .collect();

    struct Search<'a> {
        items: &'a [MckItem],
        caps: &'a [u64],
        paid: usize,
        optimistic: &'a [f64],
        tier_orders: &'a [Vec<u8>],
        assign: Vec<u8>,
        used: Vec<u64>,
        best_value: f64,
        best_assign: Vec<u8>,
    }

    impl Search<'_> {
        fn dfs(&mut self, k: usize, value: f64) {
            if k == self.items.len() {
                if value > self.best_value {
                    self.best_value = value;
                    self.best_assign = self.assign.clone();
                }
                return;
            }
            if value + self.optimistic[k] <= self.best_value {
                return;
            }
            let size = self.items[k].size;
            for ti in 0..self.tier_orders[k].len() {
                let t = self.tier_orders[k][ti];
                let d = t as usize;
                if d < self.paid && self.used[d] + size > self.caps[d] {
                    continue;
                }
                self.used[d] += size;
                self.assign[k] = t;
                self.dfs(k + 1, value + self.items[k].values[d]);
                self.used[d] -= size;
            }
        }
    }

    let mut search = Search {
        items,
        caps,
        paid: n - 1,
        optimistic: &optimistic,
        tier_orders: &tier_orders,
        assign: vec![last; items.len()],
        used: vec![0; n],
        best_value: f64::NEG_INFINITY,
        best_assign: vec![last; items.len()],
    };
    search.dfs(0, 0.0);
    let out = MckAssignment::from_tiers(items, n, search.best_assign);
    debug_assert!(out.respects(caps));
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(i: u32, size: u64, values: &[f64]) -> MckItem {
        MckItem {
            id: ObjectId(i),
            size,
            values: values.to_vec(),
        }
    }

    #[test]
    fn toy_three_tier_instance_places_by_sensitivity() {
        let items = vec![
            item(0, 64, &[90.0, 40.0, 0.0]),
            item(1, 64, &[80.0, 70.0, 0.0]),
            item(2, 128, &[30.0, 5.0, 0.0]),
        ];
        for sol in [
            solve_mck(&items, &[64, 128, u64::MAX]).unwrap(),
            solve_mck_dp(&items, &[64, 128, u64::MAX]).unwrap(),
            solve_mck_bnb(&items, &[64, 128, u64::MAX])
                .unwrap()
                .unwrap(),
        ] {
            assert_eq!(sol.tiers, vec![0, 1, 2]);
            assert!((sol.total_value - 160.0).abs() < 1e-9);
            assert_eq!(sol.per_tier_bytes, vec![64, 64, 128]);
        }
    }

    #[test]
    fn two_tier_delegates_to_binary_solver() {
        let items = vec![
            item(0, 10, &[5.0, 0.0]),
            item(1, 10, &[9.0, 0.0]),
            item(2, 10, &[1.0, 0.0]),
        ];
        let bin: Vec<Item> = items
            .iter()
            .map(|it| Item {
                id: it.id,
                size: it.size,
                value: it.values[0],
            })
            .collect();
        let expect = knapsack::solve(&bin, 20);
        let got = solve_mck(&items, &[20, u64::MAX]).unwrap();
        assert_eq!(got.objects_on(&items, 0), expect.chosen);
        assert_eq!(got.total_value, expect.total_value);
        assert_eq!(got.per_tier_bytes[0], expect.total_size);
    }

    #[test]
    fn greedy_climbs_through_tiers_as_capacity_allows() {
        // One item, huge middle tier, tiny DRAM: it should end on the
        // best tier it fits, not the first upgrade found.
        let items = vec![item(0, 100, &[50.0, 20.0, 0.0])];
        let sol = solve_mck_greedy(&items, &[64, 1024, u64::MAX]).unwrap();
        assert_eq!(sol.tiers, vec![1]);
        let sol = solve_mck_greedy(&items, &[128, 1024, u64::MAX]).unwrap();
        assert_eq!(sol.tiers, vec![0]);
    }

    #[test]
    fn spill_tier_is_unbounded() {
        let items = vec![item(0, 1 << 40, &[1.0, 0.5, 0.0])];
        let sol = solve_mck(&items, &[16, 16, 1]).unwrap();
        assert_eq!(sol.tiers, vec![2]);
        assert!(sol.respects(&[16, 16, 1]));
    }

    #[test]
    fn invalid_inputs_are_errors() {
        assert!(solve_mck(&[item(0, 8, &[1.0])], &[64]).is_err());
        assert!(solve_mck(&[item(0, 8, &[1.0, 0.0])], &[64, 64, 64]).is_err());
        assert!(solve_mck(&[item(0, 0, &[1.0, 0.0, 0.0])], &[64, 64, 64]).is_err());
        assert!(solve_mck(&[item(0, 8, &[f64::NAN, 0.0, 0.0])], &[64, 64, 64]).is_err());
    }

    #[test]
    fn bnb_bails_over_the_item_limit() {
        let items: Vec<MckItem> = (0..MCK_BNB_ITEM_LIMIT as u32 + 1)
            .map(|i| item(i, 8, &[1.0, 0.5, 0.0]))
            .collect();
        assert!(solve_mck_bnb(&items, &[64, 64, u64::MAX])
            .unwrap()
            .is_none());
        // solve_mck still works through the other solvers.
        assert!(solve_mck(&items, &[64, 64, u64::MAX]).is_ok());
    }

    #[test]
    fn dp_scales_capacity_conservatively() {
        // Capacities far above the cell budget force a coarse grain; the
        // result must stay feasible.
        let items: Vec<MckItem> = (0..10)
            .map(|i| item(i, (i as u64 + 1) << 20, &[10.0 - i as f64, 3.0, 0.0]))
            .collect();
        let caps = [16u64 << 20, 64 << 20, u64::MAX];
        let sol = solve_mck_dp(&items, &caps).unwrap();
        assert!(sol.respects(&caps));
        let exact = solve_mck_bnb(&items, &caps).unwrap().unwrap();
        assert!(sol.total_value <= exact.total_value + 1e-9);
    }
}
