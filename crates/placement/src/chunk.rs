//! Large-object decomposition (chunking).
//!
//! An object larger than DRAM can never be chosen by the knapsack. The
//! paper partitions such objects (conservatively: only flat, regularly
//! accessed arrays) into chunks smaller than DRAM and lets the solver
//! place chunks individually, scaling the object's demand by the chunk's
//! share of its bytes.

use tahoe_hms::ObjectId;
use tahoe_perfmodel::Demand;

use crate::weight::ObjectCandidate;

/// A chunk descriptor produced by [`split_candidate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkCandidate {
    /// The parent object.
    pub parent: ObjectId,
    /// Chunk index within the parent.
    pub index: u32,
    /// The candidate (sized and demand-scaled) for the solver. Its `id`
    /// is a *chunk id* assigned by the caller when the chunk objects are
    /// materialized.
    pub candidate: ObjectCandidate,
}

/// Split a candidate into `ceil(size / chunk_size)` chunks with demand
/// scaled pro rata (regular access assumption). Chunk ids are assigned by
/// `id_of(parent, index)` — the runtime materializes chunk objects in the
/// HMS and provides real ids.
///
/// Returns `None` when chunking is pointless (object already fits in
/// `chunk_size` or sizes are degenerate).
pub fn split_candidate<F>(
    cand: &ObjectCandidate,
    chunk_size: u64,
    mut id_of: F,
) -> Option<Vec<ChunkCandidate>>
where
    F: FnMut(ObjectId, u32) -> ObjectId,
{
    if chunk_size == 0 || cand.size <= chunk_size {
        return None;
    }
    let n = cand.size.div_ceil(chunk_size);
    let mut out = Vec::with_capacity(n as usize);
    let mut remaining = cand.size;
    for i in 0..n {
        let this = remaining.min(chunk_size);
        remaining -= this;
        let frac = this as f64 / cand.size as f64;
        out.push(ChunkCandidate {
            parent: cand.id,
            index: i as u32,
            candidate: ObjectCandidate {
                id: id_of(cand.id, i as u32),
                size: this,
                demand: cand.demand.scale(frac),
                resident: cand.resident,
            },
        });
    }
    Some(out)
}

/// Sum of the chunks' demand must equal the parent's (up to rounding):
/// helper for tests and invariant checks.
pub fn total_demand(chunks: &[ChunkCandidate]) -> Demand {
    chunks
        .iter()
        .fold(Demand::ZERO, |acc, c| acc.add(&c.candidate.demand))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(size: u64) -> ObjectCandidate {
        ObjectCandidate {
            id: ObjectId(5),
            size,
            demand: Demand {
                loads: 1000.0,
                stores: 500.0,
                active_ns: 2000.0,
                concurrency: 8.0,
            },
            resident: false,
        }
    }

    fn ids(parent: ObjectId, index: u32) -> ObjectId {
        ObjectId(1000 + parent.0 * 100 + index)
    }

    #[test]
    fn small_objects_are_not_split() {
        assert!(split_candidate(&cand(100), 100, ids).is_none());
        assert!(split_candidate(&cand(100), 0, ids).is_none());
    }

    #[test]
    fn split_covers_all_bytes() {
        let chunks = split_candidate(&cand(1050), 256, ids).unwrap();
        assert_eq!(chunks.len(), 5);
        let total: u64 = chunks.iter().map(|c| c.candidate.size).sum();
        assert_eq!(total, 1050);
        // Last chunk carries the remainder.
        assert_eq!(chunks[4].candidate.size, 1050 - 4 * 256);
        // Indices are dense.
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.index, i as u32);
            assert_eq!(c.parent, ObjectId(5));
        }
    }

    #[test]
    fn demand_is_conserved() {
        let c = cand(1050);
        let chunks = split_candidate(&c, 256, ids).unwrap();
        let t = total_demand(&chunks);
        assert!((t.loads - c.demand.loads).abs() < 1e-9);
        assert!((t.stores - c.demand.stores).abs() < 1e-9);
        assert!((t.active_ns - c.demand.active_ns).abs() < 1e-9);
    }

    #[test]
    fn chunk_ids_come_from_callback() {
        let chunks = split_candidate(&cand(512), 256, ids).unwrap();
        assert_eq!(chunks[0].candidate.id, ObjectId(1500));
        assert_eq!(chunks[1].candidate.id, ObjectId(1501));
    }

    #[test]
    fn even_split_demand_is_proportional() {
        let c = cand(1024);
        let chunks = split_candidate(&c, 256, ids).unwrap();
        assert_eq!(chunks.len(), 4);
        for ch in &chunks {
            assert!((ch.candidate.demand.loads - 250.0).abs() < 1e-9);
        }
    }
}
