//! Placement plans: the output of the decision engine.

use std::collections::BTreeSet;

use tahoe_hms::{Ns, ObjectId};

/// Which search produced the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Per-window local search (placement may change every window).
    Local,
    /// Cross-window global search (one placement for the whole run).
    Global,
}

/// The DRAM set chosen for one execution window, with the transitions
/// from the previous window's set.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowPlan {
    /// Window index.
    pub window: u32,
    /// Objects that should be DRAM-resident during this window.
    pub dram_set: BTreeSet<ObjectId>,
    /// Objects to promote (NVM → DRAM) at the window boundary.
    pub promote: Vec<ObjectId>,
    /// Objects to evict (DRAM → NVM) at the window boundary.
    pub evict: Vec<ObjectId>,
    /// Predicted net gain of this window's placement, ns.
    pub predicted_gain_ns: Ns,
}

/// A complete placement plan for a run.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Which search produced it.
    pub kind: PlanKind,
    /// One entry per window, ascending.
    pub windows: Vec<WindowPlan>,
    /// Total predicted net gain, ns.
    pub predicted_gain_ns: Ns,
}

impl Plan {
    /// The DRAM set planned for `window` (falls back to the last window's
    /// set when the application runs longer than the planning horizon).
    pub fn dram_set_for(&self, window: u32) -> Option<&BTreeSet<ObjectId>> {
        if self.windows.is_empty() {
            return None;
        }
        let idx = self
            .windows
            .iter()
            .position(|w| w.window == window)
            .unwrap_or(self.windows.len() - 1);
        Some(&self.windows[idx].dram_set)
    }

    /// Total number of planned migrations (promotions + evictions).
    pub fn migration_count(&self) -> usize {
        self.windows
            .iter()
            .map(|w| w.promote.len() + w.evict.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wp(window: u32, set: &[u32], promote: &[u32]) -> WindowPlan {
        WindowPlan {
            window,
            dram_set: set.iter().map(|&i| ObjectId(i)).collect(),
            promote: promote.iter().map(|&i| ObjectId(i)).collect(),
            evict: Vec::new(),
            predicted_gain_ns: 1.0,
        }
    }

    #[test]
    fn dram_set_lookup_and_fallback() {
        let plan = Plan {
            kind: PlanKind::Local,
            windows: vec![wp(0, &[1], &[1]), wp(1, &[2], &[2])],
            predicted_gain_ns: 2.0,
        };
        assert!(plan.dram_set_for(0).unwrap().contains(&ObjectId(1)));
        assert!(plan.dram_set_for(1).unwrap().contains(&ObjectId(2)));
        // Window 7 was never planned: reuse the last window's set.
        assert!(plan.dram_set_for(7).unwrap().contains(&ObjectId(2)));
        assert_eq!(plan.migration_count(), 2);
    }

    #[test]
    fn empty_plan_has_no_set() {
        let plan = Plan {
            kind: PlanKind::Global,
            windows: vec![],
            predicted_gain_ns: 0.0,
        };
        assert!(plan.dram_set_for(0).is_none());
        assert_eq!(plan.migration_count(), 0);
    }
}
