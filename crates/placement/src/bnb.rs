//! Branch-and-bound 0/1 knapsack: exact on *unscaled* sizes.
//!
//! The DP solver scales sizes to a grain to bound its table; for small
//! candidate sets (a handful of target objects per window, the paper's
//! common case) branch-and-bound is exact without any scaling and is
//! used as the cross-check of record. The bound is the classic
//! fractional (Dantzig) relaxation over density-sorted items.

use tahoe_hms::ObjectId;

use crate::knapsack::{Item, Solution};

/// Maximum number of eligible items for which the exact search runs;
/// beyond this the caller should use the DP/greedy path.
pub const BNB_ITEM_LIMIT: usize = 40;

struct Search<'a> {
    items: &'a [SortedItem],
    capacity: u64,
    best_value: f64,
    best_mask: u64,
}

#[derive(Clone, Copy)]
struct SortedItem {
    id: ObjectId,
    size: u64,
    value: f64,
    original: usize,
}

impl Search<'_> {
    /// Dantzig upper bound for the subproblem starting at `idx` with
    /// `room` bytes left: take whole items greedily by density, then a
    /// fractional piece of the first that does not fit.
    fn upper_bound(&self, idx: usize, room: u64, value: f64) -> f64 {
        let mut bound = value;
        let mut room = room;
        for it in &self.items[idx..] {
            if it.size <= room {
                room -= it.size;
                bound += it.value;
            } else {
                bound += it.value * room as f64 / it.size as f64;
                break;
            }
        }
        bound
    }

    fn branch(&mut self, idx: usize, room: u64, value: f64, mask: u64) {
        if value > self.best_value {
            self.best_value = value;
            self.best_mask = mask;
        }
        if idx >= self.items.len() {
            return;
        }
        if self.upper_bound(idx, room, value) <= self.best_value {
            return; // prune
        }
        let it = self.items[idx];
        // Include first (density order makes inclusion the promising arm).
        if it.size <= room {
            self.branch(idx + 1, room - it.size, value + it.value, mask | (1 << idx));
        }
        // Exclude.
        self.branch(idx + 1, room, value, mask);
    }
}

/// Exact 0/1 knapsack by branch-and-bound. Returns `None` when more than
/// [`BNB_ITEM_LIMIT`] items are eligible (use the DP path instead).
pub fn solve_bnb(items: &[Item], capacity: u64) -> Option<Solution> {
    let mut eligible: Vec<SortedItem> = items
        .iter()
        .enumerate()
        .filter(|(_, it)| it.value > 0.0 && it.size > 0 && it.size <= capacity)
        .map(|(original, it)| SortedItem {
            id: it.id,
            size: it.size,
            value: it.value,
            original,
        })
        .collect();
    if eligible.len() > BNB_ITEM_LIMIT {
        return None;
    }
    if eligible.is_empty() || capacity == 0 {
        return Some(Solution::empty());
    }
    // Density order for tight Dantzig bounds.
    eligible.sort_by(|a, b| {
        let da = a.value / a.size as f64;
        let db = b.value / b.size as f64;
        db.partial_cmp(&da)
            .expect("densities are finite")
            .then(a.original.cmp(&b.original))
    });
    let mut search = Search {
        items: &eligible,
        capacity,
        best_value: 0.0,
        best_mask: 0,
    };
    search.branch(0, capacity, 0.0, 0);
    let _ = search.capacity;

    let mut chosen = Vec::new();
    let mut total_size = 0;
    let mut total_value = 0.0;
    for (i, it) in eligible.iter().enumerate() {
        if search.best_mask & (1 << i) != 0 {
            chosen.push(it.id);
            total_size += it.size;
            total_value += it.value;
        }
    }
    chosen.sort_unstable();
    Some(Solution {
        chosen,
        total_value,
        total_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knapsack;

    fn item(id: u32, size: u64, value: f64) -> Item {
        Item {
            id: ObjectId(id),
            size,
            value,
        }
    }

    #[test]
    fn solves_the_greedy_trap_exactly() {
        let items = [item(0, 6, 18.0), item(1, 5, 14.0), item(2, 5, 14.0)];
        let s = solve_bnb(&items, 10).unwrap();
        assert_eq!(s.chosen, vec![ObjectId(1), ObjectId(2)]);
        assert!((s.total_value - 28.0).abs() < 1e-9);
    }

    #[test]
    fn matches_dp_on_aligned_sizes() {
        // Sizes far below the DP scaling threshold → both exact.
        let items: Vec<Item> = (0..12)
            .map(|i| item(i, (i as u64 % 5 + 1) * 7, ((i * 13) % 29 + 1) as f64))
            .collect();
        for cap in [10u64, 40, 80, 200] {
            let dp = knapsack::solve_exact(&items, cap);
            let bb = solve_bnb(&items, cap).unwrap();
            assert!(
                (dp.total_value - bb.total_value).abs() < 1e-9,
                "cap {cap}: dp {} vs bnb {}",
                dp.total_value,
                bb.total_value
            );
        }
    }

    #[test]
    fn beats_or_ties_scaled_dp_on_huge_capacities() {
        // Capacity above the DP's grain threshold: the DP may under-fill,
        // branch-and-bound stays exact.
        let cap: u64 = 1 << 26;
        let items: Vec<Item> = (0..20)
            .map(|i| item(i, (i as u64 + 1) * 3_000_001, (i + 1) as f64))
            .collect();
        let dp = knapsack::solve(&items, cap);
        let bb = solve_bnb(&items, cap).unwrap();
        assert!(bb.total_value >= dp.total_value - 1e-9);
        assert!(bb.total_size <= cap);
    }

    #[test]
    fn declines_oversized_problems() {
        let items: Vec<Item> = (0..60).map(|i| item(i, 10, 1.0)).collect();
        assert!(solve_bnb(&items, 100).is_none());
    }

    #[test]
    fn empty_and_degenerate() {
        assert_eq!(solve_bnb(&[], 100).unwrap(), Solution::empty());
        let only_bad = [item(0, 5, -1.0), item(1, 1000, 5.0)];
        assert_eq!(solve_bnb(&only_bad, 100).unwrap(), Solution::empty());
    }
}
