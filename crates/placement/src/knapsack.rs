//! 0/1 knapsack solvers.
//!
//! Sizes are bytes (u64), values are predicted nanoseconds saved (f64).
//! The exact solver scales sizes *up* to a grain so the DP table stays
//! small; rounding up can only under-fill the knapsack, never overflow
//! DRAM — an admissible approximation for a memory budget.

use tahoe_hms::ObjectId;

/// One candidate object (or chunk) for DRAM residence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Object this item stands for.
    pub id: ObjectId,
    /// Bytes it would occupy in DRAM.
    pub size: u64,
    /// Net predicted value of keeping it in DRAM, in ns saved.
    pub value: f64,
}

/// Result of a solve: which ids were chosen and the totals.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Chosen ids, ascending.
    pub chosen: Vec<ObjectId>,
    /// Sum of chosen values.
    pub total_value: f64,
    /// Sum of chosen (true, unscaled) sizes.
    pub total_size: u64,
}

impl Solution {
    /// The empty solution.
    pub fn empty() -> Self {
        Solution {
            chosen: Vec::new(),
            total_value: 0.0,
            total_size: 0,
        }
    }

    /// Whether `id` was chosen.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.chosen.binary_search(&id).is_ok()
    }
}

/// Maximum number of DP columns the exact solver will allocate; above
/// this, sizes are scaled to a coarser grain.
const MAX_DP_WIDTH: u64 = 8192;

/// Exact 0/1 knapsack by dynamic programming over scaled capacity.
///
/// Items with non-positive value or zero size are never chosen; items
/// larger than the capacity are skipped. `grain` is chosen so the DP
/// width is at most `MAX_DP_WIDTH`; item sizes round *up* to the grain.
pub fn solve_exact(items: &[Item], capacity: u64) -> Solution {
    let eligible: Vec<&Item> = items
        .iter()
        .filter(|it| it.value > 0.0 && it.size > 0 && it.size <= capacity)
        .collect();
    if eligible.is_empty() || capacity == 0 {
        return Solution::empty();
    }
    let grain = (capacity / MAX_DP_WIDTH).max(1);
    let width = (capacity / grain) as usize; // floor: stay within capacity
                                             // dp[w] = best value using scaled budget w; parent bit per (item, w).
    let mut dp = vec![0.0f64; width + 1];
    let mut take = vec![false; (width + 1) * eligible.len()];
    for (i, it) in eligible.iter().enumerate() {
        let need = it.size.div_ceil(grain) as usize;
        if need > width {
            continue;
        }
        // Classic reverse scan so each item is used at most once.
        for w in (need..=width).rev() {
            let cand = dp[w - need] + it.value;
            if cand > dp[w] {
                dp[w] = cand;
                take[i * (width + 1) + w] = true;
            }
        }
    }
    // Best budget is the full width (dp is monotone in w).
    let mut w = width;
    let mut chosen = Vec::new();
    let mut total_size = 0u64;
    let mut total_value = 0.0;
    for (i, it) in eligible.iter().enumerate().rev() {
        if take[i * (width + 1) + w] {
            chosen.push(it.id);
            total_size += it.size;
            total_value += it.value;
            w -= it.size.div_ceil(grain) as usize;
        }
    }
    chosen.sort_unstable();
    Solution {
        chosen,
        total_value,
        total_size,
    }
}

/// Greedy by value density (value per byte), the classic 1/2-approximation
/// companion. Used as a cross-check and as a fast path for huge item
/// sets.
pub fn solve_greedy(items: &[Item], capacity: u64) -> Solution {
    let mut eligible: Vec<&Item> = items
        .iter()
        .filter(|it| it.value > 0.0 && it.size > 0 && it.size <= capacity)
        .collect();
    eligible.sort_by(|a, b| {
        let da = a.value / a.size as f64;
        let db = b.value / b.size as f64;
        db.partial_cmp(&da)
            .expect("densities are finite")
            .then(a.id.cmp(&b.id))
    });
    let mut remaining = capacity;
    let mut chosen = Vec::new();
    let mut total_size = 0u64;
    let mut total_value = 0.0;
    for it in eligible {
        if it.size <= remaining {
            remaining -= it.size;
            chosen.push(it.id);
            total_size += it.size;
            total_value += it.value;
        }
    }
    chosen.sort_unstable();
    Solution {
        chosen,
        total_value,
        total_size,
    }
}

/// Solve, preferring the best of branch-and-bound (exact on unscaled
/// sizes, for small candidate sets), exact-DP (scaled sizes) and greedy.
pub fn solve(items: &[Item], capacity: u64) -> Solution {
    let mut best = solve_exact(items, capacity);
    let greedy = solve_greedy(items, capacity);
    if greedy.total_value > best.total_value {
        best = greedy;
    }
    if let Some(bnb) = crate::bnb::solve_bnb(items, capacity) {
        if bnb.total_value > best.total_value {
            best = bnb;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(id: u32, size: u64, value: f64) -> Item {
        Item {
            id: ObjectId(id),
            size,
            value,
        }
    }

    #[test]
    fn picks_best_pair_over_greedy_trap() {
        // Greedy-by-density takes item 0 (density 3) and blocks the
        // optimal {1, 2}.
        let items = [item(0, 6, 18.0), item(1, 5, 14.0), item(2, 5, 14.0)];
        let s = solve_exact(&items, 10);
        assert_eq!(s.chosen, vec![ObjectId(1), ObjectId(2)]);
        assert!((s.total_value - 28.0).abs() < 1e-9);
        assert_eq!(s.total_size, 10);
        // And solve() must agree.
        assert_eq!(solve(&items, 10), s);
    }

    #[test]
    fn respects_capacity_exactly() {
        let items = [item(0, 4, 10.0), item(1, 4, 10.0), item(2, 4, 10.0)];
        let s = solve(&items, 8);
        assert_eq!(s.chosen.len(), 2);
        assert!(s.total_size <= 8);
    }

    #[test]
    fn skips_non_positive_values() {
        let items = [item(0, 4, -5.0), item(1, 4, 0.0), item(2, 4, 1.0)];
        let s = solve(&items, 100);
        assert_eq!(s.chosen, vec![ObjectId(2)]);
    }

    #[test]
    fn skips_oversized_items() {
        let items = [item(0, 200, 1000.0), item(1, 10, 1.0)];
        let s = solve(&items, 100);
        assert_eq!(s.chosen, vec![ObjectId(1)]);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(solve(&[], 100), Solution::empty());
        assert_eq!(solve(&[item(0, 1, 1.0)], 0), Solution::empty());
    }

    #[test]
    fn greedy_matches_exact_on_uniform_sizes() {
        let items: Vec<Item> = (0..20).map(|i| item(i, 10, (i + 1) as f64)).collect();
        let e = solve_exact(&items, 100);
        let g = solve_greedy(&items, 100);
        assert!((e.total_value - g.total_value).abs() < 1e-9);
        assert_eq!(e.chosen.len(), 10);
    }

    #[test]
    fn scaling_never_overflows_capacity() {
        // Capacity far above MAX_DP_WIDTH forces grain > 1.
        let cap: u64 = 1 << 28; // 256 MB
        let items: Vec<Item> = (0..50)
            .map(|i| item(i, (i as u64 + 1) * 3_000_001, (i + 1) as f64))
            .collect();
        let s = solve_exact(&items, cap);
        assert!(s.total_size <= cap, "{} > {}", s.total_size, cap);
    }

    #[test]
    fn solution_contains() {
        let s = solve(&[item(3, 1, 5.0), item(7, 1, 5.0)], 10);
        assert!(s.contains(ObjectId(3)));
        assert!(s.contains(ObjectId(7)));
        assert!(!s.contains(ObjectId(5)));
    }

    #[test]
    fn single_item_exact_fit() {
        let s = solve(&[item(0, 100, 1.0)], 100);
        assert_eq!(s.chosen, vec![ObjectId(0)]);
        assert_eq!(s.total_size, 100);
    }
}
