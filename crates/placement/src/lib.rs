//! Data-placement decision engine.
//!
//! Given per-object demand estimates, migration costs and the DRAM
//! capacity, choosing which objects to keep in DRAM is a 0/1 knapsack
//! over net weights `w = benefit − migration_cost − eviction_cost`
//! (the paper's formulation). This crate provides:
//!
//! * [`knapsack`] — an exact dynamic-programming solver (with capacity
//!   scaling so the DP stays small) and a density-greedy fallback,
//!   cross-checked against each other by property tests.
//! * [`weight`] — assembly of knapsack items from model outputs,
//!   including the paper's treatment of already-resident objects (no
//!   promotion cost) and of eviction pressure.
//! * [`search`] — the two planning strategies the paper combines:
//!   *per-window local search* (best placement for each execution window,
//!   more migrations) and *cross-window global search* (one placement for
//!   the whole run, at most one migration per object), and the predicted-
//!   gain comparison that picks between them.
//! * [`chunk`] — large-object decomposition, so part of an object bigger
//!   than DRAM can still be placed.
//! * [`mck`] — the N-tier generalization: a multiple-choice knapsack
//!   where each object picks exactly one tier of an ordered tier list
//!   (DRAM / CXL / … / NVM) under per-tier capacities. At two tiers it
//!   delegates to [`knapsack::solve`], so binary plans are unchanged.

// Pure combinatorial-optimization logic: no raw-memory access anywhere.
#![forbid(unsafe_code)]

pub mod bnb;
pub mod chunk;
pub mod knapsack;
pub mod mck;
pub mod plan;
pub mod search;
pub mod weight;

pub use bnb::solve_bnb;
pub use knapsack::{solve, Item, Solution};
pub use mck::{solve_mck, solve_mck_bnb, solve_mck_dp, solve_mck_greedy, MckAssignment, MckItem};
pub use plan::{Plan, PlanKind, WindowPlan};
pub use search::{choose_plan, global_plan, local_plan};
pub use weight::{ObjectCandidate, WeighCtx};
